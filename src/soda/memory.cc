#include "soda/memory.h"

#include <stdexcept>

namespace ntv::soda {

SimdMemoryBank::SimdMemoryBank(int lanes, int entries)
    : lanes_(lanes),
      entries_(entries),
      data_(static_cast<std::size_t>(lanes) * entries, 0) {
  if (lanes < 1 || entries < 1)
    throw std::invalid_argument("SimdMemoryBank: bad dimensions");
}

std::uint16_t SimdMemoryBank::read(int entry, int lane) const {
  if (entry < 0 || entry >= entries_ || lane < 0 || lane >= lanes_)
    throw std::out_of_range("SimdMemoryBank::read");
  return data_[static_cast<std::size_t>(entry) * lanes_ + lane];
}

void SimdMemoryBank::write(int entry, int lane, std::uint16_t value) {
  if (entry < 0 || entry >= entries_ || lane < 0 || lane >= lanes_)
    throw std::out_of_range("SimdMemoryBank::write");
  data_[static_cast<std::size_t>(entry) * lanes_ + lane] = value;
}

MultiBankMemory::MultiBankMemory(int width, int banks, int entries)
    : width_(width), entries_(entries) {
  if (banks < 1 || width < banks || width % banks != 0)
    throw std::invalid_argument(
        "MultiBankMemory: width must be a positive multiple of banks");
  lanes_per_bank_ = width / banks;
  banks_.reserve(static_cast<std::size_t>(banks));
  for (int b = 0; b < banks; ++b) {
    banks_.emplace_back(lanes_per_bank_, entries);
  }
}

void MultiBankMemory::read_row(int row, std::span<std::uint16_t> out) const {
  if (static_cast<int>(out.size()) != width_)
    throw std::invalid_argument("MultiBankMemory::read_row: size mismatch");
  for (int lane = 0; lane < width_; ++lane) {
    out[static_cast<std::size_t>(lane)] = read(row, lane);
  }
}

void MultiBankMemory::write_row(int row,
                                std::span<const std::uint16_t> in) {
  if (static_cast<int>(in.size()) != width_)
    throw std::invalid_argument("MultiBankMemory::write_row: size mismatch");
  for (int lane = 0; lane < width_; ++lane) {
    write(row, lane, in[static_cast<std::size_t>(lane)]);
  }
}

std::uint16_t MultiBankMemory::read(int row, int lane) const {
  if (lane < 0 || lane >= width_)
    throw std::out_of_range("MultiBankMemory::read: lane");
  ++reads_;
  return banks_[static_cast<std::size_t>(lane / lanes_per_bank_)].read(
      row, lane % lanes_per_bank_);
}

void MultiBankMemory::write(int row, int lane, std::uint16_t value) {
  if (lane < 0 || lane >= width_)
    throw std::out_of_range("MultiBankMemory::write: lane");
  ++writes_;
  banks_[static_cast<std::size_t>(lane / lanes_per_bank_)].write(
      row, lane % lanes_per_bank_, value);
}

long MultiBankMemory::inject_retention_faults(stats::Xoshiro256pp& rng,
                                              double bit_flip_prob) {
  if (bit_flip_prob < 0.0 || bit_flip_prob > 1.0)
    throw std::invalid_argument(
        "inject_retention_faults: probability out of range");
  long flipped = 0;
  for (int row = 0; row < entries_; ++row) {
    for (int lane = 0; lane < width_; ++lane) {
      std::uint16_t word =
          banks_[static_cast<std::size_t>(lane / lanes_per_bank_)].read(
              row, lane % lanes_per_bank_);
      std::uint16_t mask = 0;
      for (int bit = 0; bit < 16; ++bit) {
        if (rng.uniform() < bit_flip_prob) {
          mask = static_cast<std::uint16_t>(mask | (1u << bit));
          ++flipped;
        }
      }
      if (mask != 0) {
        banks_[static_cast<std::size_t>(lane / lanes_per_bank_)].write(
            row, lane % lanes_per_bank_,
            static_cast<std::uint16_t>(word ^ mask));
      }
    }
  }
  return flipped;
}

ScalarMemory::ScalarMemory(int words) : data_(static_cast<std::size_t>(words), 0) {
  if (words < 1) throw std::invalid_argument("ScalarMemory: bad size");
}

std::uint16_t ScalarMemory::read(int address) const {
  if (address < 0 || address >= size())
    throw std::out_of_range("ScalarMemory::read");
  return data_[static_cast<std::size_t>(address)];
}

void ScalarMemory::write(int address, std::uint16_t value) {
  if (address < 0 || address >= size())
    throw std::out_of_range("ScalarMemory::write");
  data_[static_cast<std::size_t>(address)] = value;
}

}  // namespace ntv::soda
