#include "soda/system.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"

namespace ntv::soda {

SodaSystem::SodaSystem(const SystemConfig& config) : config_(config) {
  if (config.num_pes < 1 || config.t_mem <= 0.0)
    throw std::invalid_argument("SodaSystem: bad configuration");
  pes_.reserve(static_cast<std::size_t>(config.num_pes));
  for (int i = 0; i < config.num_pes; ++i) {
    pes_.push_back(std::make_unique<ProcessingElement>(config.pe));
  }
  t_simd_.assign(static_cast<std::size_t>(config.num_pes), config.t_mem);
}

ProcessingElement& SodaSystem::pe(int index) {
  return *pes_.at(static_cast<std::size_t>(index));
}

void SodaSystem::set_pe_clock(int index, double t_simd) {
  if (t_simd <= 0.0)
    throw std::invalid_argument("set_pe_clock: period must be positive");
  const double ratio = t_simd / config_.t_mem;
  if (std::abs(ratio - std::round(ratio)) > 1e-6 * ratio)
    throw std::invalid_argument(
        "set_pe_clock: SIMD period must be a memory-clock multiple");
  t_simd_.at(static_cast<std::size_t>(index)) = t_simd;
}

double SodaSystem::pe_clock(int index) const {
  return t_simd_.at(static_cast<std::size_t>(index));
}

double SodaSystem::bin_clock(double raw_delay) const {
  if (raw_delay <= 0.0)
    throw std::invalid_argument("bin_clock: delay must be positive");
  const double multiples = std::ceil(raw_delay / config_.t_mem - 1e-9);
  return std::max(1.0, multiples) * config_.t_mem;
}

Schedule SodaSystem::run_jobs(const std::vector<Job>& jobs) {
  obs::ScopedTimer timer(obs::timer("soda.run_jobs"));
  Schedule schedule;
  schedule.placements.resize(jobs.size());
  schedule.busy.assign(pes_.size(), 0.0);
  std::vector<double> available(pes_.size(), 0.0);

  long instructions = 0;
  long simd_cycles = 0;
  long scalar_cycles = 0;
  long memory_cycles = 0;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    // Greedy: place on the PE that becomes available first; ties go to
    // the faster clock.
    std::size_t best = 0;
    for (std::size_t p = 1; p < pes_.size(); ++p) {
      if (available[p] < available[best] - 1e-18 ||
          (std::abs(available[p] - available[best]) < 1e-18 &&
           t_simd_[p] < t_simd_[best])) {
        best = p;
      }
    }
    const RunStats stats = jobs[j](*pes_[best]);
    instructions += stats.instructions;
    simd_cycles += stats.simd_cycles;
    scalar_cycles += stats.scalar_cycles;
    memory_cycles += stats.memory_cycles;
    const double duration = ProcessingElement::execution_time(
        stats, t_simd_[best], config_.t_mem);
    schedule.placements[j] = {static_cast<int>(best), available[best],
                              available[best] + duration};
    available[best] += duration;
    schedule.busy[best] += duration;
  }
  schedule.makespan =
      *std::max_element(available.begin(), available.end());
  obs::counter("soda.jobs").add(static_cast<std::int64_t>(jobs.size()));
  obs::counter("soda.instructions").add(instructions);
  obs::counter("soda.simd_cycles").add(simd_cycles);
  obs::counter("soda.scalar_cycles").add(scalar_cycles);
  obs::counter("soda.memory_cycles").add(memory_cycles);
  return schedule;
}

FabricOutcome SodaSystem::run_concurrent(
    const std::vector<std::vector<Program>>& queues,
    const MemTimingConfig& mem) {
  if (queues.size() != pes_.size())
    throw std::invalid_argument("run_concurrent: one queue per PE required");
  obs::ScopedTimer timer(obs::timer("soda.run_concurrent"));
  FabricRunConfig config;
  config.mem = mem;
  config.simd_ratio.reserve(pes_.size());
  for (std::size_t p = 0; p < pes_.size(); ++p) {
    config.simd_ratio.push_back(
        static_cast<int>(std::lround(t_simd_[p] / config_.t_mem)));
  }
  std::vector<ProcessingElement*> pes;
  pes.reserve(pes_.size());
  for (const auto& pe : pes_) pes.push_back(pe.get());
  return run_on_fabric(pes, queues, config);
}

double SodaSystem::ideal_makespan(const Schedule& schedule) const {
  const double fastest =
      *std::min_element(t_simd_.begin(), t_simd_.end());
  // Scale each PE's busy time to the fastest clock and balance perfectly:
  // lower bound = total fastest-clock work / num_pes. SIMD and memory
  // cycles scale differently, so approximate with the clock ratio on the
  // whole duration (exact when SIMD cycles dominate).
  double total = 0.0;
  for (std::size_t p = 0; p < t_simd_.size(); ++p) {
    total += schedule.busy[p] * (fastest / t_simd_[p]);
  }
  return total / static_cast<double>(t_simd_.size());
}

}  // namespace ntv::soda
