// Memory subsystem of the PE (full-voltage domain).
//
// Appendix B: 64 KB SIMD memory in four banks (each 32 lanes x 16 bit x
// 256 entries) plus a 4 KB scalar memory. A 128-wide vector row spans all
// four banks: lane L of row R lives in bank L/32, lane-column L%32,
// entry R. Memory stays at full voltage (data-retention), which is why
// the paper couples the SIMD clock to the memory clock in Section 4.3.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "stats/rng.h"

namespace ntv::soda {

/// One SIMD memory bank: `lanes` columns x `entries` rows of 16-bit words.
class SimdMemoryBank {
 public:
  SimdMemoryBank(int lanes, int entries);

  int lanes() const noexcept { return lanes_; }
  int entries() const noexcept { return entries_; }

  std::uint16_t read(int entry, int lane) const;
  void write(int entry, int lane, std::uint16_t value);

 private:
  int lanes_;
  int entries_;
  std::vector<std::uint16_t> data_;
};

/// Four banks presenting a `width`-lane row interface.
class MultiBankMemory {
 public:
  /// `width` must be divisible by `banks`.
  MultiBankMemory(int width = 128, int banks = 4, int entries = 256);

  int width() const noexcept { return width_; }
  int banks() const noexcept { return static_cast<int>(banks_.size()); }
  int entries() const noexcept { return entries_; }

  /// Reads a full row into `out` (size width). Throws on bad row.
  void read_row(int row, std::span<std::uint16_t> out) const;

  /// Writes a full row from `in` (size width).
  void write_row(int row, std::span<const std::uint16_t> in);

  /// Element access (lane-addressed).
  std::uint16_t read(int row, int lane) const;
  void write(int row, int lane, std::uint16_t value);

  /// Access counters (bank conflicts/energy proxies for the stats report).
  long reads() const noexcept { return reads_; }
  long writes() const noexcept { return writes_; }

  /// Data-retention fault injection: flips each stored bit independently
  /// with probability `bit_flip_prob` and returns the number of flipped
  /// bits. Models what would happen if the SRAM were dragged into the
  /// near-threshold domain — the reason Diet SODA keeps all memory at
  /// full voltage (Appendix B). Destructive; intended for fault-injection
  /// experiments.
  long inject_retention_faults(stats::Xoshiro256pp& rng,
                               double bit_flip_prob);

 private:
  int width_;
  int entries_;
  int lanes_per_bank_;
  std::vector<SimdMemoryBank> banks_;
  mutable long reads_ = 0;
  long writes_ = 0;
};

/// 16-bit-word scalar memory (4 KB = 2048 words).
class ScalarMemory {
 public:
  explicit ScalarMemory(int words = 2048);

  std::uint16_t read(int address) const;
  void write(int address, std::uint16_t value);
  int size() const noexcept { return static_cast<int>(data_.size()); }

 private:
  std::vector<std::uint16_t> data_;
};

}  // namespace ntv::soda
