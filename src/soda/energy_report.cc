#include "soda/energy_report.h"

#include <stdexcept>

#include "device/transistor.h"

namespace ntv::soda {

ActivitySnapshot ActivitySnapshot::of(const ProcessingElement& pe) {
  ActivitySnapshot snap;
  snap.fu_ops = pe.simd().total_ops();
  snap.tree_ops = pe.adder_tree().ops();
  snap.memory_reads = pe.simd_memory().reads();
  snap.memory_writes = pe.simd_memory().writes();
  return snap;
}

EnergyReport estimate_energy(const device::TechNode& node,
                             const RunStats& stats,
                             const ActivitySnapshot& before,
                             const ActivitySnapshot& after, double vdd_simd,
                             double t_simd, double t_mem,
                             const EnergyCosts& costs) {
  if (vdd_simd <= 0.0 || vdd_simd > node.nominal_vdd + 1e-9)
    throw std::invalid_argument("estimate_energy: bad DV-domain voltage");

  const long fu_ops = after.fu_ops - before.fu_ops;
  const long tree_ops = after.tree_ops - before.tree_ops;
  const long mem_ops = (after.memory_reads - before.memory_reads) +
                       (after.memory_writes - before.memory_writes);
  if (fu_ops < 0 || tree_ops < 0 || mem_ops < 0)
    throw std::invalid_argument("estimate_energy: snapshots out of order");

  EnergyReport report;
  report.runtime =
      ProcessingElement::execution_time(stats, t_simd, t_mem);

  // Dynamic CV^2 scaling of the DV domain relative to nominal.
  const double v_ratio = vdd_simd / node.nominal_vdd;
  const double dv_scale = v_ratio * v_ratio;
  report.dv_dynamic =
      dv_scale * (costs.fu_op * static_cast<double>(fu_ops) +
                  costs.tree_add * static_cast<double>(tree_ops));

  // Leakage: power at nominal = leakage_fraction * (1 op / 1 nominal
  // SIMD cycle); scale current by the transregional off-current ratio and
  // integrate over the runtime.
  const device::TransistorModel transistor(node);
  const double leak_current_ratio =
      transistor.ioff(vdd_simd) / transistor.ioff(node.nominal_vdd);
  const double nominal_cycle = t_mem;  // FV cycle as the time base.
  const double leak_power_nominal = costs.leakage_fraction / nominal_cycle;
  report.dv_leakage = leak_power_nominal * leak_current_ratio * v_ratio *
                      report.runtime;

  // FV domain (memory + scalar) runs at nominal voltage: no scaling.
  report.fv_energy =
      costs.memory_access * static_cast<double>(mem_ops) +
      costs.scalar_cycle * static_cast<double>(stats.scalar_cycles);

  report.total = report.dv_dynamic + report.dv_leakage + report.fv_energy;
  return report;
}

}  // namespace ntv::soda
