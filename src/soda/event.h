// Event-driven simulation core of the SODA fabric.
//
// ROADMAP item 3 (cf. NDP-SIM's port/component/connection fabric): all
// state changes of the simulated machine are coordinated through one
// global-timestamp scheduler. Determinism is a hard contract, not a
// best effort:
//
//  * Events are totally ordered by (timestamp, target component id,
//    sequence number). Component ids are dense and assigned in fabric
//    construction order, sequence numbers increase monotonically per
//    scheduler, so two runs of the same configuration pop the exact
//    same event order — byte-reproducible across hosts and thread
//    counts (the fabric itself is single-threaded; the exec pool only
//    ever parallelizes *across* independent fabrics).
//  * The heap is stable with respect to the key: the pop order of a set
//    of events is a function of their keys alone, never of the order
//    they were pushed (tests/soda/event_test.cc holds this invariant).
//
// Components exchange Messages over Connections. A Connection is a
// point-to-point transport with a delivery latency and a credit budget:
// the sender consumes one credit per message, the receiver returns the
// credit when it has *processed* (not merely received) the message, and
// messages sent without a credit wait in the sender-side queue — that
// is the credit-based back-pressure that lets a slow consumer stall a
// fast producer without ever losing or duplicating a transfer
// (conservation is also property-tested).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <queue>
#include <string>
#include <vector>

namespace ntv::soda {

/// Global simulation time in ticks of the full-voltage (memory) clock.
using SimTime = std::uint64_t;

/// Total order of events: earliest time first; ties broken by the target
/// component's id, then by the scheduler-assigned sequence number.
struct EventKey {
  SimTime time = 0;
  std::uint32_t component = 0;  ///< Target component id (tie-break 1).
  std::uint64_t seq = 0;        ///< Schedule-order sequence (tie-break 2).

  friend bool operator<(const EventKey& a, const EventKey& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    if (a.component != b.component) return a.component < b.component;
    return a.seq < b.seq;
  }
};

/// Payload of one event. Components interpret `kind` and the integer
/// arguments themselves; keeping the payload POD keeps scheduling
/// allocation-free and trivially reproducible.
struct Message {
  int kind = 0;
  std::int64_t a = 0;
  std::int64_t b = 0;
  std::int64_t c = 0;
};

class Connection;
class Fabric;

/// One functional island on the fabric: a named unit of state that only
/// changes in handle() calls dispatched by the scheduler.
class Component {
 public:
  virtual ~Component() = default;

  /// Dense id assigned at fabric registration (deterministic: the n-th
  /// registered component gets id n). Used as the event tie-break.
  std::uint32_t id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }

  /// Processes one event. `from` is the delivering connection, or
  /// nullptr for self-scheduled events.
  virtual void handle(const Message& msg, SimTime now, Connection* from) = 0;

 protected:
  explicit Component(std::string name) : name_(std::move(name)) {}
  Fabric* fabric() const noexcept { return fabric_; }

 private:
  friend class Fabric;
  std::string name_;
  std::uint32_t id_ = 0;
  Fabric* fabric_ = nullptr;
};

/// The event priority queue, separated from the fabric so the ordering
/// contract is testable in isolation. pop order depends only on keys.
class EventScheduler {
 public:
  struct Entry {
    EventKey key;
    enum class Type { kDeliver, kCredit, kSelf } type = Type::kSelf;
    Connection* conn = nullptr;
    Component* target = nullptr;
    Message msg;
  };

  void push(Entry entry) { heap_.push(std::move(entry)); }
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t size() const noexcept { return heap_.size(); }
  Entry pop() {
    Entry top = heap_.top();
    heap_.pop();
    return top;
  }
  const Entry& peek() const { return heap_.top(); }

  /// Next unused sequence number (monotone per scheduler).
  std::uint64_t next_seq() noexcept { return seq_++; }

 private:
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return b.key < a.key;  // min-heap on EventKey
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::uint64_t seq_ = 0;
};

/// Point-to-point transport between two components with latency and a
/// credit budget (the back-pressure window).
class Connection {
 public:
  /// Lifetime counters (conservation invariants: after a drained run,
  /// sent == delivered == released + unreleased-in-receiver).
  struct Stats {
    long sent = 0;       ///< Messages accepted by send().
    long delivered = 0;  ///< Messages handed to the receiver.
    long released = 0;   ///< Credits returned by the receiver.
    long blocked = 0;    ///< Sends that found no credit and queued.
  };

  Component& from() const noexcept { return *from_; }
  Component& to() const noexcept { return *to_; }
  SimTime latency() const noexcept { return latency_; }
  int credits_available() const noexcept { return credits_; }
  const Stats& stats() const noexcept { return stats_; }

  /// Sends a message toward the receiver. With a credit in hand the
  /// delivery event is scheduled at now + latency; otherwise the message
  /// queues sender-side and departs when a credit is released (FIFO).
  void send(const Message& msg, SimTime now);

  /// Receiver-side: returns one credit to the sender, releasing the
  /// oldest queued message (if any) at `now`. Call when the message's
  /// processing is complete — that is what makes the window meaningful.
  void release(SimTime now);

 private:
  friend class Fabric;
  Connection(Fabric& fabric, Component& from, Component& to, SimTime latency,
             int credits)
      : fabric_(&fabric),
        from_(&from),
        to_(&to),
        latency_(latency),
        credits_(credits) {}

  void deliver(const Message& msg, SimTime now);  // dispatched by Fabric
  void on_credit(SimTime now);                    // dispatched by Fabric

  Fabric* fabric_;
  Component* from_;
  Component* to_;
  SimTime latency_;
  int credits_;
  std::deque<Message> pending_;
  Stats stats_;
};

/// The fabric: owns the scheduler, the component registry and the
/// connections, and runs the event loop to quiescence.
class Fabric {
 public:
  Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Registers a component (not owned) and assigns its dense id.
  void add(Component& component);

  /// Creates a connection from -> to. Both components must already be
  /// registered. `credits` >= 1 is the back-pressure window.
  Connection& connect(Component& from, Component& to, SimTime latency = 0,
                      int credits = 1);

  /// Schedules a self event for `target` at absolute time `when`.
  void schedule(Component& target, const Message& msg, SimTime when);

  SimTime now() const noexcept { return now_; }
  long events_processed() const noexcept { return events_; }
  const std::vector<Component*>& components() const noexcept {
    return components_;
  }
  const std::vector<Connection*>& connections() const noexcept {
    return connection_ptrs_;
  }

  /// Runs until no events remain (or `max_events` dispatches, a runaway
  /// guard; throws std::runtime_error when exceeded).
  void run(long max_events = 200'000'000);

 private:
  friend class Connection;
  void push_deliver(Connection& conn, const Message& msg, SimTime when);
  void push_credit(Connection& conn, SimTime when);

  EventScheduler scheduler_;
  std::vector<Component*> components_;
  std::vector<std::unique_ptr<Connection>> connections_;
  std::vector<Connection*> connection_ptrs_;
  SimTime now_ = 0;
  long events_ = 0;
};

}  // namespace ntv::soda
