// Run manifest: everything needed to reproduce a run's result fields.
//
// Reproducibility studies treat the run manifest (seed, node, voltage
// grid, tool version) as a first-class output: a report whose numbers
// cannot be regenerated is not evidence. Every JSON report this repo
// emits therefore starts with one of these.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json_writer.h"

namespace ntv::obs {

/// Reproduction context of one run. Fields that do not apply to a given
/// tool (e.g. tech_node for `ntvsim nodes`) stay empty and serialize as
/// "" / [] so the schema is stable across commands.
struct RunManifest {
  std::string tool;             ///< Binary name, e.g. "ntvsim".
  std::string command;          ///< Subcommand / mode, e.g. "study".
  std::uint64_t seed = 0;       ///< Monte Carlo base seed of the run.
  int threads = 0;              ///< Resolved worker thread count.
  int threads_requested = 0;    ///< --threads value as given (0 = auto).
  std::string tech_node;        ///< e.g. "90nm GP"; empty if node-less.
  std::vector<double> vdd_grid; ///< Supply voltages swept [V].
  /// Variance-reduction strategy of the run's Monte Carlo sampling
  /// ("naive" / "stratified" / "importance" / "qmc").
  std::string sampling = "naive";
  std::string build_type = std::string(build_kind());
  std::string library_version = std::string(version());

  /// Serializes this manifest as one JSON object value on `w`.
  void write(JsonWriter& w) const;

  /// Library version baked in at configure time (CMake project version).
  static std::string_view version() noexcept;

  /// "Release" when compiled with NDEBUG, "Debug" otherwise.
  static std::string_view build_kind() noexcept;
};

}  // namespace ntv::obs
