// Run manifest: everything needed to reproduce a run's result fields.
//
// Reproducibility studies treat the run manifest (seed, node, voltage
// grid, tool version) as a first-class output: a report whose numbers
// cannot be regenerated is not evidence. Every JSON report this repo
// emits therefore starts with one of these, serialized under the
// top-level "manifest" key of the schema-v1 report
// (docs/OBSERVABILITY.md). Downstream consumers: tools/check_report.py
// asserts the skeleton fields exist, and the reproduction harness
// (src/harness, docs/REPRODUCTION.md) reads the surrounding report's
// results.values when aggregating EXPERIMENTS.json.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json_writer.h"

namespace ntv::obs {

/// Reproduction context of one run. Fields that do not apply to a given
/// tool (e.g. tech_node for `ntvsim nodes`) stay empty and serialize as
/// "" / [] so the schema is stable across commands.
struct RunManifest {
  std::string tool;             ///< Binary name, e.g. "ntvsim".
  std::string command;          ///< Subcommand / mode, e.g. "study".
  /// Monte Carlo base seed. Together with `sampling` and the sample
  /// budget this pins the byte-identity contract: same (seed, plan,
  /// budget) => identical results at any thread count (docs/PERF.md).
  std::uint64_t seed = 0;
  int threads = 0;              ///< Resolved worker thread count.
  int threads_requested = 0;    ///< --threads value as given (0 = auto).
  std::string tech_node;        ///< e.g. "90nm GP"; empty if node-less.
  std::vector<double> vdd_grid; ///< Supply voltages swept [V].
  /// Variance-reduction strategy of the run's Monte Carlo sampling
  /// ("naive" / "stratified" / "importance" / "qmc"); non-naive plans
  /// are gated by tolerance windows, not byte identity
  /// (docs/SAMPLING.md).
  std::string sampling = "naive";
  /// Evaluation backend of the run ("mc" = sampled Monte Carlo,
  /// "analytic" = closed-form SSTA; docs/SSTA.md). Analytic runs are
  /// deterministic, so `seed`/`sampling` do not affect their results;
  /// they are gated against the mc twin by tolerance bands.
  std::string backend = "mc";
  /// Active SIMD dispatch backend ("scalar" / "avx2" / "neon"). Purely
  /// informational: every backend is byte-identical by contract
  /// (docs/SIMD.md), so reports are comparable across values.
  std::string simd = "scalar";
  /// "Release"/"Debug" of the producing binary — reports from different
  /// build types are comparable in values but not in timings.
  std::string build_type = std::string(build_kind());
  std::string library_version = std::string(version());  ///< CMake version.

  /// Shard role of the producing process ("" = unsharded, "k/N" =
  /// worker, "merge/N" = merger; docs/SHARDING.md). Reports from
  /// workers are placeholders — only merge/unsharded reports carry
  /// meaningful results, and they are byte-identical to each other.
  std::string shard;
  /// Per-worker provenance of a merged report: which seed substreams
  /// each worker filled (block groups ≡ block_offset mod block_stride,
  /// kShardBlockGroup Monte Carlo blocks per group), on which host, and
  /// how many summaries its tape contributed.
  struct ShardProvenance {
    int index = 0;
    int count = 1;
    std::string host;
    std::uint64_t records = 0;
    int block_offset = 0;  ///< == index: owned group residue.
    int block_stride = 1;  ///< == count: the partition modulus.
  };
  std::vector<ShardProvenance> shards;  ///< Empty unless merged.

  /// Serializes this manifest as one JSON object value on `w`.
  void write(JsonWriter& w) const;

  /// Library version baked in at configure time (CMake project version).
  static std::string_view version() noexcept;

  /// "Release" when compiled with NDEBUG, "Debug" otherwise.
  static std::string_view build_kind() noexcept;
};

}  // namespace ntv::obs
