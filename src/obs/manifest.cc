#include "obs/manifest.h"

namespace ntv::obs {

#ifndef NTV_VERSION
#define NTV_VERSION "0.0.0-unversioned"
#endif

std::string_view RunManifest::version() noexcept { return NTV_VERSION; }

std::string_view RunManifest::build_kind() noexcept {
#ifdef NDEBUG
  return "Release";
#else
  return "Debug";
#endif
}

void RunManifest::write(JsonWriter& w) const {
  w.begin_object();
  w.key("tool").value(tool);
  w.key("command").value(command);
  w.key("seed").value(static_cast<std::uint64_t>(seed));
  w.key("threads").value(threads);
  w.key("threads_requested").value(threads_requested);
  w.key("tech_node").value(tech_node);
  w.key("vdd_grid").begin_array();
  for (double v : vdd_grid) w.value(v);
  w.end_array();
  w.key("sampling").value(sampling);
  w.key("backend").value(backend);
  w.key("simd").value(simd);
  w.key("build_type").value(build_type);
  w.key("library_version").value(library_version);
  w.key("shard").value(shard);
  w.key("shards").begin_array();
  for (const ShardProvenance& s : shards) {
    w.begin_object();
    w.key("index").value(s.index);
    w.key("count").value(s.count);
    w.key("host").value(s.host);
    w.key("records").value(static_cast<std::uint64_t>(s.records));
    w.key("block_offset").value(s.block_offset);
    w.key("block_stride").value(s.block_stride);
    w.end_object();
  }
  w.end_array();
  w.end_object();
}

}  // namespace ntv::obs
