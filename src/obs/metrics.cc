#include "obs/metrics.h"

#include <thread>

namespace ntv::obs {

std::size_t ShardedCounter::home_shard() noexcept {
  // One hash per thread lifetime: the thread id is stable, so cache the
  // shard index in a thread_local instead of re-hashing on every add.
  thread_local const std::size_t shard =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kShards;
  return shard;
}

Registry& Registry::global() {
  // Leaked on purpose: instrumented code may run during static
  // destruction, and a still-reachable pointer keeps LSan quiet.
  static Registry* instance = new Registry();
  return *instance;
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

Timer& Registry::timer(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

ShardedCounter& Registry::sharded_counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sharded_.find(name);
  if (it == sharded_.end()) {
    it = sharded_.try_emplace(std::string(name)).first;
  }
  return it->second;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters[name] = c.value();
  for (const auto& [name, c] : sharded_) snap.counters[name] = c.value();
  for (const auto& [name, g] : gauges_) snap.gauges[name] = g.value();
  for (const auto& [name, t] : timers_) {
    snap.timers[name] = TimerStat{t.total_ns(), t.count()};
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, c] : sharded_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, t] : timers_) t.reset();
}

Counter& counter(std::string_view name) {
  return Registry::global().counter(name);
}

ShardedCounter& sharded_counter(std::string_view name) {
  return Registry::global().sharded_counter(name);
}

Gauge& gauge(std::string_view name) {
  return Registry::global().gauge(name);
}

Timer& timer(std::string_view name) {
  return Registry::global().timer(name);
}

}  // namespace ntv::obs
