// JSON run reports: manifest + experiment results + metrics.
//
// Schema (version 1, see docs/OBSERVABILITY.md):
//   {
//     "schema_version": 1,
//     "manifest": { tool, command, seed, threads, tech_node, vdd_grid,
//                   build_type, library_version },
//     "results":  { ... command-specific, deterministic given the seed },
//     "metrics":  { "counters": {name: int},
//                   "gauges":   {name: double},
//                   "timers":   {name: {total_ns, count}} }   // optional
//   }
//
// The results section must be a pure function of (inputs, seed) — CI
// diffs it across runs. Wall-clock data lives only under "metrics"
// (timers) and can be suppressed entirely with include_timings=false,
// which is how the determinism tests compare whole documents.
#pragma once

#include <functional>
#include <string>

#include "obs/json_writer.h"
#include "obs/manifest.h"
#include "obs/metrics.h"

namespace ntv::obs {

inline constexpr int kReportSchemaVersion = 1;

struct ReportOptions {
  /// When false, the timers section (the only nondeterministic part of a
  /// report) is omitted.
  bool include_timings = true;
};

/// Serializes a metrics snapshot as one JSON object value on `w`.
void write_metrics(JsonWriter& w, const MetricsSnapshot& metrics,
                   const ReportOptions& opt = {});

/// Builds a complete report document. `write_results` is invoked with the
/// writer positioned at the "results" value and must emit exactly one
/// JSON value (normally an object); pass nullptr for `results: null`.
std::string build_report(
    const RunManifest& manifest,
    const std::function<void(JsonWriter&)>& write_results,
    const MetricsSnapshot& metrics, const ReportOptions& opt = {});

/// build_report + write_text_file. Returns false on I/O failure.
bool write_report_file(
    const std::string& path, const RunManifest& manifest,
    const std::function<void(JsonWriter&)>& write_results,
    const MetricsSnapshot& metrics, const ReportOptions& opt = {});

}  // namespace ntv::obs
