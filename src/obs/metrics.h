// Process-wide metrics registry: counters, gauges and wall-clock timers.
//
// Every Monte Carlo sweep in this repo used to report its cost only as
// human-readable stdout; this registry is the machine-readable side. Hot
// paths (the MC runner, the Newton solver, the SODA interpreter) bump
// named metrics; report writers snapshot the registry and serialize it.
//
// Design constraints:
//  * Thread-safe accumulation — MC blocks run on every worker of the
//    shared pool, so Counter/Gauge/Timer mutate through relaxed atomics
//    only.
//  * Stable addresses — counter("x") returns a reference that remains
//    valid for the program lifetime (node-based std::map + leaked global
//    registry), so hot loops can cache the reference and skip the name
//    lookup entirely.
//  * No dependencies — obs sits below every other ntv library.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace ntv::obs {

/// Monotonically increasing integer metric (e.g. "mc.samples").
class Counter {
 public:
  void add(std::int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written floating-point metric (e.g. "mc.threads").
class Gauge {
 public:
  void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
  double value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Counter sharded across cache lines for write-heavy hot paths. A plain
/// Counter is race-free (relaxed atomic) but every worker of the thread
/// pool bumps the SAME cache line, so a counter touched once per Monte
/// Carlo block becomes a cross-core ping-pong under the pool. Shards
/// spread the writes: each thread picks a home shard by hashing its id,
/// value() sums the shards (exact — every add lands in exactly one
/// atomic), and snapshot()/reset() treat it like any other counter.
class ShardedCounter {
 public:
  static constexpr std::size_t kShards = 16;

  void add(std::int64_t delta) noexcept {
    shards_[home_shard()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  void increment() noexcept { add(1); }
  std::int64_t value() const noexcept {
    std::int64_t total = 0;
    for (const auto& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void reset() noexcept {
    for (auto& s : shards_) s.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Shard {
    std::atomic<std::int64_t> value{0};
  };
  static std::size_t home_shard() noexcept;
  Shard shards_[kShards];
};

/// Accumulating wall-clock timer: total nanoseconds and activation count.
class Timer {
 public:
  void record(std::int64_t ns) noexcept {
    total_ns_.fetch_add(ns, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  std::int64_t total_ns() const noexcept {
    return total_ns_.load(std::memory_order_relaxed);
  }
  std::int64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    total_ns_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> total_ns_{0};
  std::atomic<std::int64_t> count_{0};
};

/// Point-in-time copy of every registered metric, for serialization.
struct TimerStat {
  std::int64_t total_ns = 0;
  std::int64_t count = 0;
};
struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, TimerStat> timers;
};

/// Named metric registry. Lookup takes a mutex (cache the returned
/// reference in hot loops); metric mutation is lock-free.
class Registry {
 public:
  /// The process-wide registry every instrumented subsystem writes to.
  /// Intentionally leaked so references stay valid during static
  /// destruction (still reachable, so LeakSanitizer stays quiet).
  static Registry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Timer& timer(std::string_view name);
  /// Sharded counter: same naming/snapshot contract as counter() (its
  /// summed value appears in MetricsSnapshot::counters), but writes are
  /// spread across cache lines. Do not register the same name as both a
  /// plain and a sharded counter; the sharded value wins in snapshots.
  ShardedCounter& sharded_counter(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zeroes every metric (registrations and addresses survive). Used by
  /// tests and by report writers that want per-run deltas.
  void reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, ShardedCounter, std::less<>> sharded_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Timer, std::less<>> timers_;
};

/// Shorthands for Registry::global() lookups.
Counter& counter(std::string_view name);
ShardedCounter& sharded_counter(std::string_view name);
Gauge& gauge(std::string_view name);
Timer& timer(std::string_view name);

/// RAII wall-clock scope: records elapsed nanoseconds into a Timer on
/// destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer& t) : timer_(&t), start_(Clock::now()) {}
  explicit ScopedTimer(std::string_view name) : ScopedTimer(timer(name)) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { timer_->record(elapsed_ns()); }

  std::int64_t elapsed_ns() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Timer* timer_;
  Clock::time_point start_;
};

}  // namespace ntv::obs
