// Dependency-free streaming JSON writer.
//
// Run reports (ntvsim --report, bench --report) must be machine-readable
// without dragging a JSON library into the build, so this is a minimal
// push-style serializer: begin_object()/key()/value()/end_object() calls
// append to an internal buffer. It guarantees structurally valid output
// (commas, nesting, string escaping) and round-trippable doubles; it does
// NOT try to be a parser.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ntv::obs {

/// Streaming JSON serializer. Calls must describe a single well-formed
/// value; misuse (e.g. value() at object scope without a key()) throws
/// std::logic_error so bugs surface in tests rather than as corrupt
/// reports.
class JsonWriter {
 public:
  JsonWriter() = default;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits an object key; the next call must produce exactly one value.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(int number) {
    return value(static_cast<std::int64_t>(number));
  }
  JsonWriter& value(unsigned number) {
    return value(static_cast<std::uint64_t>(number));
  }
  JsonWriter& value(bool flag);
  JsonWriter& null();

  /// Splices a pre-serialized JSON value verbatim (no validation). Lets a
  /// results fragment built by one writer be embedded into a report built
  /// by another without re-parsing.
  JsonWriter& raw(std::string_view json);

  /// True once exactly one complete top-level value has been written.
  bool complete() const noexcept;

  /// The serialized document. Throws std::logic_error when !complete().
  const std::string& str() const;

  /// JSON string escaping (quotes, backslash, control characters as
  /// \uXXXX); UTF-8 payload bytes pass through untouched.
  static std::string escape(std::string_view text);

  /// Shortest decimal form of `v` that parses back to the same double;
  /// non-finite values serialize as "null" (JSON has no NaN/Inf).
  static std::string format_double(double v);

 private:
  enum class Scope : std::uint8_t { kObject, kArray };
  struct Frame {
    Scope scope;
    bool has_items = false;
  };

  /// Validates that a value may start here and writes any needed comma.
  void begin_value();

  std::string out_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;  ///< key() emitted, value expected.
  bool done_ = false;         ///< A complete top-level value exists.
};

/// Writes `contents` to `path` atomically enough for CI use (truncate +
/// write + flush). Returns false on I/O failure.
bool write_text_file(const std::string& path, std::string_view contents);

}  // namespace ntv::obs
