#include "obs/report.h"

namespace ntv::obs {

void write_metrics(JsonWriter& w, const MetricsSnapshot& metrics,
                   const ReportOptions& opt) {
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : metrics.counters) {
    w.key(name).value(value);
  }
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, value] : metrics.gauges) {
    w.key(name).value(value);
  }
  w.end_object();
  if (opt.include_timings) {
    w.key("timers").begin_object();
    for (const auto& [name, stat] : metrics.timers) {
      w.key(name).begin_object();
      w.key("total_ns").value(stat.total_ns);
      w.key("count").value(stat.count);
      w.end_object();
    }
    w.end_object();
  }
  w.end_object();
}

std::string build_report(
    const RunManifest& manifest,
    const std::function<void(JsonWriter&)>& write_results,
    const MetricsSnapshot& metrics, const ReportOptions& opt) {
  JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(kReportSchemaVersion);
  w.key("manifest");
  manifest.write(w);
  w.key("results");
  if (write_results) {
    write_results(w);
  } else {
    w.null();
  }
  w.key("metrics");
  write_metrics(w, metrics, opt);
  w.end_object();
  return w.str();
}

bool write_report_file(
    const std::string& path, const RunManifest& manifest,
    const std::function<void(JsonWriter&)>& write_results,
    const MetricsSnapshot& metrics, const ReportOptions& opt) {
  const std::string doc =
      build_report(manifest, write_results, metrics, opt);
  return write_text_file(path, doc + "\n");
}

}  // namespace ntv::obs
