#include "obs/json_writer.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ntv::obs {

void JsonWriter::begin_value() {
  if (done_) throw std::logic_error("JsonWriter: document already complete");
  if (!stack_.empty()) {
    Frame& top = stack_.back();
    if (top.scope == Scope::kObject && !key_pending_)
      throw std::logic_error("JsonWriter: value in object requires key()");
    if (top.scope == Scope::kArray && top.has_items) out_ += ',';
    if (top.scope == Scope::kArray) top.has_items = true;
  }
  key_pending_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  begin_value();
  stack_.push_back({Scope::kObject});
  out_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  if (stack_.empty() || stack_.back().scope != Scope::kObject ||
      key_pending_) {
    throw std::logic_error("JsonWriter: mismatched end_object()");
  }
  stack_.pop_back();
  out_ += '}';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  begin_value();
  stack_.push_back({Scope::kArray});
  out_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  if (stack_.empty() || stack_.back().scope != Scope::kArray) {
    throw std::logic_error("JsonWriter: mismatched end_array()");
  }
  stack_.pop_back();
  out_ += ']';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (stack_.empty() || stack_.back().scope != Scope::kObject ||
      key_pending_) {
    throw std::logic_error("JsonWriter: key() outside object scope");
  }
  Frame& top = stack_.back();
  if (top.has_items) out_ += ',';
  top.has_items = true;
  out_ += '"';
  out_ += escape(name);
  out_ += "\":";
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  begin_value();
  out_ += '"';
  out_ += escape(text);
  out_ += '"';
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  begin_value();
  out_ += format_double(number);
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  begin_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(number));
  out_ += buf;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  begin_value();
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(number));
  out_ += buf;
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  begin_value();
  out_ += flag ? "true" : "false";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::null() {
  begin_value();
  out_ += "null";
  if (stack_.empty()) done_ = true;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  begin_value();
  out_ += json;
  if (stack_.empty()) done_ = true;
  return *this;
}

bool JsonWriter::complete() const noexcept {
  return done_ && stack_.empty();
}

const std::string& JsonWriter::str() const {
  if (!complete())
    throw std::logic_error("JsonWriter: document incomplete");
  return out_;
}

std::string JsonWriter::escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string JsonWriter::format_double(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Shortest of %.15g/%.16g/%.17g that round-trips; 17 digits always do.
  for (int precision : {15, 16, 17}) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

bool write_text_file(const std::string& path, std::string_view contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return false;
  const bool ok =
      std::fwrite(contents.data(), 1, contents.size(), f) == contents.size();
  const bool closed = std::fclose(f) == 0;
  return ok && closed;
}

}  // namespace ntv::obs
