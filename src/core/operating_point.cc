#include "core/operating_point.h"

#include <stdexcept>
#include <vector>

#include "exec/thread_pool.h"
#include "stats/root_find.h"

namespace ntv::core {

OperatingPointFinder::OperatingPointFinder(const device::TechNode& node,
                                           MitigationConfig config)
    : study_(node, config), energy_(node) {}

double OperatingPointFinder::naive_vdd_for_clock(double t_clk) const {
  const auto& node = study_.node();
  const device::GateDelayModel model(node);
  const double stages = study_.config().timing.chain_stages;
  auto excess = [&](double v) {
    return stages * model.fo4_delay(v) - t_clk;
  };
  if (excess(node.nominal_vdd) > 0.0) return node.nominal_vdd;
  if (excess(0.3) < 0.0) return 0.3;
  stats::RootOptions opt;
  opt.x_tol = 1e-5;
  return stats::brent(excess, 0.3, node.nominal_vdd, opt).x;
}

OperatingPoint OperatingPointFinder::evaluate(double vdd, double t_clk,
                                              int spares) const {
  if (t_clk <= 0.0)
    throw std::invalid_argument("OperatingPointFinder: t_clk must be > 0");
  OperatingPoint point;
  point.vdd = vdd;
  point.spares = spares;

  // The mitigation target here is the *clock*, not the paper's nominal-
  // scaled baseline: find the smallest margin making p99 <= t_clk.
  auto excess = [&](double margin) {
    return study_.chip_delay_p99(vdd + margin, spares) - t_clk;
  };
  double margin = 0.0;
  if (excess(0.0) > 0.0) {
    double hi = 1e-3;
    const double cap = study_.node().nominal_vdd - vdd;
    while (hi <= cap && excess(hi) > 0.0) hi *= 2.0;
    if (hi > cap) {
      point.meets_clock = false;
      point.signoff_delay = study_.chip_delay_p99(vdd, spares);
      point.energy = energy_.at(vdd).total_energy;
      return point;
    }
    stats::RootOptions opt;
    opt.x_tol = 1e-5;
    margin = stats::brent(excess, 0.0, hi, opt).x;
    if (excess(margin) > 0.0) margin += opt.x_tol;
  }

  point.margin = margin;
  point.meets_clock = true;
  point.signoff_delay = study_.chip_delay_p99(vdd + margin, spares);
  // Energy at the margined voltage, plus the spares' routing power.
  const double base = energy_.at(vdd + margin).total_energy;
  point.energy =
      base *
      (1.0 + study_.config().area_power.duplication_power_overhead(spares));
  return point;
}

OperatingPoint OperatingPointFinder::optimize(
    double t_clk, double v_lo, double v_hi, double v_step,
    std::span<const int> spare_options) const {
  if (v_step <= 0.0 || v_hi < v_lo)
    throw std::invalid_argument("OperatingPointFinder::optimize: bad range");
  static constexpr int kDefaultSpares[] = {0};
  if (spare_options.empty()) spare_options = kDefaultSpares;

  // Materialize the (voltage, spares) grid, evaluate every candidate as a
  // pool task, then take the argmin serially in grid order — the same
  // first-strictly-smaller tie-breaking as the original serial scan, so
  // the chosen point is identical for any worker count.
  std::vector<std::pair<double, int>> grid;
  for (double v = v_lo; v <= v_hi + v_step / 2.0; v += v_step) {
    for (int spares : spare_options) grid.emplace_back(v, spares);
  }

  std::vector<OperatingPoint> candidates(grid.size());
  exec::ThreadPool::global().parallel_for(0, grid.size(), [&](std::size_t i) {
    candidates[i] = evaluate(grid[i].first, t_clk, grid[i].second);
  });

  OperatingPoint best;
  best.meets_clock = false;
  best.energy = 1e300;
  for (const OperatingPoint& candidate : candidates) {
    if (candidate.meets_clock && candidate.energy < best.energy) {
      best = candidate;
    }
  }
  return best;
}

}  // namespace ntv::core
