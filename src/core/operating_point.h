// Variation-aware energy-optimal operating point.
//
// An extension in the paper's spirit: given a throughput requirement
// (a clock period the 128-wide datapath must meet at the 99% sign-off
// point), find the minimum-energy supply voltage — *including* the
// variation mitigation cost. A variation-naive DVFS controller would pick
// the voltage where the nominal critical path meets the clock; the
// variation-aware one must either raise the voltage by the Table 2 margin
// or add Table 1 spares, and the energy comparison between those choices
// moves the optimum.
#pragma once

#include "core/mitigation.h"
#include "energy/energy_model.h"

namespace ntv::core {

/// One evaluated operating point.
struct OperatingPoint {
  double vdd = 0.0;             ///< Base supply before margin [V].
  double margin = 0.0;          ///< Voltage margin applied [V].
  int spares = 0;               ///< Spare lanes used.
  bool meets_clock = false;     ///< Sign-off delay <= t_clk.
  double energy = 0.0;          ///< Energy/op, normalized to nominal.
  double signoff_delay = 0.0;   ///< 99% chip delay at (vdd+margin) [s].
};

/// Finds variation-aware minimum-energy operating points.
class OperatingPointFinder {
 public:
  explicit OperatingPointFinder(const device::TechNode& node,
                                MitigationConfig config = {});

  /// Lowest voltage whose *nominal* (variation-free) chip delay meets
  /// t_clk — what a variation-naive controller would pick.
  double naive_vdd_for_clock(double t_clk) const;

  /// Evaluates one candidate: at base voltage `vdd` with `spares`, the
  /// required margin is applied and the total energy computed (dynamic
  /// CV^2 at the margined voltage + leakage).
  OperatingPoint evaluate(double vdd, double t_clk, int spares = 0) const;

  /// Scans base voltages in [v_lo, v_hi] (step `v_step`) x spare options
  /// and returns the minimum-energy point that meets the clock.
  /// Returns meets_clock=false in the result when nothing does.
  OperatingPoint optimize(double t_clk, double v_lo, double v_hi,
                          double v_step = 0.01,
                          std::span<const int> spare_options = {}) const;

  const MitigationStudy& study() const noexcept { return study_; }
  const energy::EnergyModel& energy_model() const noexcept { return energy_; }

 private:
  mutable MitigationStudy study_;
  energy::EnergyModel energy_;
};

}  // namespace ntv::core
