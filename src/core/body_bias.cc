#include "core/body_bias.h"

#include <cmath>
#include <stdexcept>

#include "arch/simd_timing.h"
#include "device/transistor.h"
#include "energy/energy_model.h"
#include "stats/percentile.h"
#include "stats/root_find.h"

namespace ntv::core {

BodyBiasSolver::BodyBiasSolver(const device::TechNode& node,
                               MitigationConfig config,
                               double leak_share_nominal)
    : node_(node),
      study_(node_, config),
      leak_share_nominal_(leak_share_nominal) {
  if (leak_share_nominal <= 0.0)
    throw std::invalid_argument("BodyBiasSolver: bad leakage share");
}

double BodyBiasSolver::chip_delay_p99_biased(double vdd,
                                             double delta) const {
  // A -delta body-bias shift is a new card with vth0 lowered; the
  // calibrated sigma parameters describe RDF/LER and are unchanged.
  device::TechNode biased = node_;
  biased.vth0 -= delta;
  // Keep the unbiased card's absolute drive scale (K*C): the reference
  // delay must be what the biased device achieves at the reference
  // voltage, otherwise the model silently renormalizes the speedup away.
  const device::GateDelayModel original(node_);
  biased.fo4_ref_delay = original.delay(node_.fo4_ref_vdd, -delta, 0.0);
  const device::VariationModel model(biased, study_.model().params());
  const arch::ChipDelaySampler sampler(model, vdd, study_.config().timing,
                                       study_.config().dist);
  stats::MonteCarloOptions opt;
  opt.seed = study_.config().seed;
  const auto mc =
      arch::mc_chip_delays(sampler, study_.config().chip_samples,
                           study_.config().timing.simd_width, 0, opt);
  return stats::percentile(mc.delays,
                           study_.config().signoff_percentile);
}

double BodyBiasSolver::leakage_multiplier(double vdd, double delta) const {
  // Off-current ratio from the transregional model at gate bias 0 with
  // DIBL, evaluated at the shifted and unshifted thresholds.
  constexpr double kDibl = 0.1;
  const double two_n_vt =
      2.0 * node_.n_slope * device::kThermalVoltage;
  const double x0 = (-node_.vth0 + kDibl * vdd) / two_n_vt;
  const double x1 = (-(node_.vth0 - delta) + kDibl * vdd) / two_n_vt;
  return std::pow(device::softplus(x1) / device::softplus(x0),
                  node_.alpha);
}

double BodyBiasSolver::leakage_share(double vdd) const {
  const energy::EnergyModel em(node_, leak_share_nominal_);
  const auto p = em.at(vdd);
  return p.leakage_energy / p.total_energy;
}

BodyBiasResult BodyBiasSolver::required_bias(double vdd,
                                             double max_delta) const {
  const double target = study_.target_delay(vdd);

  BodyBiasResult result;
  auto excess = [&](double delta) {
    return chip_delay_p99_biased(vdd, delta) - target;
  };

  if (excess(0.0) <= 0.0) {
    result.feasible = true;
    return result;
  }
  // Bracket by doubling from 1 mV of Vth shift.
  double hi = 1e-3;
  while (hi <= max_delta && excess(hi) > 0.0) hi *= 2.0;
  if (hi > max_delta) {
    result.feasible = false;
    result.delta_vth = max_delta;
    result.leakage_multiplier = leakage_multiplier(vdd, max_delta);
    result.power_overhead = study_.config().area_power.dv_power_frac *
                            leakage_share(vdd) *
                            (result.leakage_multiplier - 1.0);
    return result;
  }

  stats::RootOptions opt;
  opt.x_tol = 1e-5;
  const auto root = stats::brent(excess, 0.0, hi, opt);
  double delta = root.x;
  if (excess(delta) > 0.0) delta += opt.x_tol;

  result.feasible = true;
  result.delta_vth = delta;
  result.leakage_multiplier = leakage_multiplier(vdd, delta);
  result.power_overhead = study_.config().area_power.dv_power_frac *
                          leakage_share(vdd) *
                          (result.leakage_multiplier - 1.0);
  return result;
}

}  // namespace ntv::core
