// Adaptive body bias (ABB) as a fourth mitigation technique.
//
// The paper's related work (EVAL, Sarangi et al.) trades variation-induced
// timing errors against power using adaptive body bias / adaptive supply
// voltage. This solver adds that option to the comparison: forward body
// bias lowers the effective threshold voltage of the whole DV domain,
// which speeds the datapath up (strongly, near threshold) at the cost of
// exponentially increased subthreshold leakage.
//
// Model: a bias shifting Vth by -delta turns the node card's vth0 into
// vth0 - delta for every device (systematic, not per-gate); the required
// delta is solved against the Section 4.2 target delay, and the power
// cost is the DV domain's leakage share scaled by the subthreshold
// leakage multiplier exp-like factor implied by the transregional model.
#pragma once

#include "core/mitigation.h"
#include "device/tech_node.h"

namespace ntv::core {

/// Result of the body-bias sizing at one operating point.
struct BodyBiasResult {
  double delta_vth = 0.0;        ///< Required threshold reduction [V].
  bool feasible = false;         ///< False when delta exceeds the cap.
  double leakage_multiplier = 1.0;  ///< I_off(vth0-delta)/I_off(vth0).
  double power_overhead = 0.0;   ///< Fraction of PE power.
};

/// Sizes forward body bias against the same target the margin solver uses.
/// Not thread-safe (owns a MitigationStudy for the baseline target).
class BodyBiasSolver {
 public:
  /// `leak_share_nominal`: leakage fraction of DV-domain power at the
  /// node's nominal voltage (the energy model's default ratio).
  explicit BodyBiasSolver(const device::TechNode& node,
                          MitigationConfig config = {},
                          double leak_share_nominal = 0.01);

  /// Smallest Vth reduction meeting target_delay(vdd) at the sign-off
  /// percentile; search capped at `max_delta` volts.
  BodyBiasResult required_bias(double vdd, double max_delta = 0.15) const;

  /// Sign-off chip delay at `vdd` with the DV domain biased by -delta.
  double chip_delay_p99_biased(double vdd, double delta) const;

  /// Leakage multiplier of a -delta Vth shift at supply `vdd`.
  double leakage_multiplier(double vdd, double delta) const;

  /// Leakage share of DV-domain power at `vdd` (grows as Vdd falls, since
  /// dynamic power shrinks quadratically while leakage does not).
  double leakage_share(double vdd) const;

  const MitigationStudy& baseline() const noexcept { return study_; }

 private:
  device::TechNode node_;
  MitigationStudy study_;
  double leak_share_nominal_;
};

}  // namespace ntv::core
