#include "core/variation_study.h"

#include <cmath>
#include <optional>

#include "device/dist_cache.h"
#include "exec/thread_pool.h"
#include "ssta/analytic_backend.h"
#include "obs/metrics.h"
#include "stats/descriptive.h"
#include "stats/monte_carlo.h"
#include "stats/percentile.h"

namespace ntv::core {

VariationStudy::VariationStudy(const device::TechNode& node,
                               device::DistributionOptions dist_opt)
    : model_(node), dist_opt_(dist_opt) {}

double VariationStudy::fo4_delay(double vdd) const noexcept {
  return model_.gate_model().fo4_delay(vdd);
}

std::pair<double, double> VariationStudy::with_die(double vdd, double mean,
                                                   double variance) const {
  const auto& p = model_.params();
  const double g = model_.gate_model().sensitivity(vdd);
  const double a = g * p.sigma_vth_sys;
  // S = exp(g*Z)*(1+W), Z~N(0,svs), W~N(0,sms):
  //   E[S]   = exp(a^2/2),   E[S^2] = exp(2 a^2) * (1 + sms^2).
  const double es = std::exp(0.5 * a * a);
  const double es2 =
      std::exp(2.0 * a * a) * (1.0 + p.sigma_mult_sys * p.sigma_mult_sys);
  const double total_mean = es * mean;
  const double total_var = es2 * (variance + mean * mean) -
                           total_mean * total_mean;
  return {total_mean, total_var};
}

double VariationStudy::single_gate_variation_pct(double vdd) const {
  obs::ScopedTimer timer(obs::timer("study.gate_eval"));
  const auto gate = device::cached_gate_distribution(model_, vdd, dist_opt_);
  const auto [m, v] = with_die(vdd, gate->mean(), gate->variance());
  return 300.0 * std::sqrt(v) / m;
}

double VariationStudy::chain_variation_pct(double vdd, int n_stages) const {
  obs::ScopedTimer timer(obs::timer("study.chain_eval"));
  const auto chain =
      device::cached_chain_distribution(model_, vdd, n_stages, dist_opt_);
  const auto [m, v] = with_die(vdd, chain->mean(), chain->variance());
  return 300.0 * std::sqrt(v) / m;
}

VariationPoint VariationStudy::study_point(double vdd, int n_stages) const {
  obs::counter("study.points").increment();
  obs::ScopedTimer timer(obs::timer("study.chain_eval"));
  const auto gate = device::cached_gate_distribution(model_, vdd, dist_opt_);
  const auto chain =
      device::cached_chain_distribution(model_, vdd, n_stages, dist_opt_);
  const auto [gm, gv] = with_die(vdd, gate->mean(), gate->variance());
  const auto [cm, cv] = with_die(vdd, chain->mean(), chain->variance());
  return VariationPoint{
      .vdd = vdd,
      .fo4_delay = fo4_delay(vdd),
      .single_pct = 300.0 * std::sqrt(gv) / gm,
      .chain_pct = 300.0 * std::sqrt(cv) / cm,
      .chain_mean = cm,
  };
}

std::vector<VariationPoint> VariationStudy::study_points(
    std::span<const double> vdds, int n_stages) const {
  std::vector<VariationPoint> points(vdds.size());
  exec::ThreadPool::global().parallel_for(0, vdds.size(), [&](std::size_t i) {
    points[i] = study_point(vdds[i], n_stages);
  });
  return points;
}

std::vector<double> VariationStudy::chain_variation_sweep(
    double vdd, std::span<const int> n_stages) const {
  std::vector<double> pcts(n_stages.size());
  exec::ThreadPool::global().parallel_for(
      0, n_stages.size(), [&](std::size_t i) {
        pcts[i] = chain_variation_pct(vdd, n_stages[i]);
      });
  return pcts;
}

namespace {

/// Shared kernel of the gate/chain delay MCs: per block, draw every row's
/// die state + uniform first (same RNG order as the old one-row-at-a-time
/// closure), then one batched inverse-CDF pass, then the die scaling.
/// Scratch is per worker thread, so nothing allocates after warmup.
std::vector<double> mc_scaled_quantiles(
    const device::VariationModel& model, double vdd,
    const stats::GridDistribution& dist, std::size_t n, std::uint64_t seed) {
  stats::MonteCarloOptions opt;
  opt.seed = seed;
  return stats::monte_carlo_blocks(
      n, 1,
      [&model, vdd, &dist](stats::Xoshiro256pp& rng, std::size_t lo,
                           std::size_t hi, double* out) {
        const std::size_t rows = hi - lo;
        thread_local std::vector<double> scratch;
        if (scratch.size() < 2 * rows) scratch.resize(2 * rows);
        double* scale = scratch.data();
        double* u = scratch.data() + rows;
        for (std::size_t i = 0; i < rows; ++i) {
          const auto die = model.sample_die(rng);
          scale[i] = model.die_scale(vdd, die);
          u[i] = rng.uniform();
        }
        dist.quantile_batch(std::span<const double>(u, rows),
                            std::span<double>(out, rows));
        for (std::size_t i = 0; i < rows; ++i) out[i] = scale[i] * out[i];
      },
      opt);
}

/// Planned variant of mc_scaled_quantiles: die draws stay pseudorandom
/// (per row, in the same order), the single delay uniform of row i comes
/// from the plan. Only called for non-naive plans — the naive path keeps
/// the hand-batched kernel above untouched.
stats::WeightedSamples mc_scaled_quantiles_planned(
    const device::VariationModel& model, double vdd,
    const stats::GridDistribution& dist, std::size_t n, std::uint64_t seed,
    const stats::SamplingPlan& plan) {
  stats::MonteCarloOptions opt;
  opt.seed = seed;
  std::optional<stats::ScrambledSobol> sobol;
  if (plan.strategy == stats::SamplingStrategy::kQmc) sobol.emplace(seed);
  const stats::ScrambledSobol* qmc = sobol ? &*sobol : nullptr;

  stats::WeightedSamples out;
  if (plan.is_weighted()) out.weights.assign(n, 1.0);
  double* weights = out.weights.empty() ? nullptr : out.weights.data();
  out.values = stats::monte_carlo_blocks(
      n, 1,
      [&model, vdd, &dist, &plan, qmc, weights, n](
          stats::Xoshiro256pp& rng, std::size_t lo, std::size_t hi,
          double* block_out) {
        const std::size_t rows = hi - lo;
        thread_local std::vector<double> scratch;
        if (scratch.size() < 2 * rows) scratch.resize(2 * rows);
        double* scale = scratch.data();
        double* u = scratch.data() + rows;
        for (std::size_t i = 0; i < rows; ++i) {
          const auto die = model.sample_die(rng);
          scale[i] = model.die_scale(vdd, die);
          const double w = stats::plan_row_uniforms(
              plan, rng, lo + i, n, std::span<double>(u + i, 1), qmc);
          if (weights != nullptr) weights[lo + i] = w;
        }
        dist.quantile_batch(std::span<const double>(u, rows),
                            std::span<double>(block_out, rows));
        for (std::size_t i = 0; i < rows; ++i) {
          block_out[i] = scale[i] * block_out[i];
        }
      },
      opt);
  return out;
}

}  // namespace

std::vector<double> VariationStudy::mc_single_gate_delays(
    double vdd, std::size_t n, std::uint64_t seed) const {
  obs::counter("study.mc_points").increment();
  obs::ScopedTimer timer(obs::timer("study.sampling"));
  const auto gate = device::cached_gate_distribution(model_, vdd, dist_opt_);
  return mc_scaled_quantiles(model_, vdd, *gate, n, seed);
}

std::vector<double> VariationStudy::mc_chain_delays(double vdd, int n_stages,
                                                    std::size_t n,
                                                    std::uint64_t seed) const {
  obs::counter("study.mc_points").increment();
  obs::ScopedTimer timer(obs::timer("study.sampling"));
  const auto chain =
      device::cached_chain_distribution(model_, vdd, n_stages, dist_opt_);
  return mc_scaled_quantiles(model_, vdd, *chain, n, seed);
}

stats::WeightedSamples VariationStudy::mc_chain_delays_planned(
    double vdd, int n_stages, std::size_t n, const stats::SamplingPlan& plan,
    std::uint64_t seed) const {
  if (plan.is_naive()) {
    // Keep the delegation exact: same kernel, same stream, empty weights.
    return stats::WeightedSamples{
        .values = mc_chain_delays(vdd, n_stages, n, seed), .weights = {}};
  }
  obs::counter("study.mc_points").increment();
  obs::ScopedTimer timer(obs::timer("study.sampling"));
  const auto chain =
      device::cached_chain_distribution(model_, vdd, n_stages, dist_opt_);
  return mc_scaled_quantiles_planned(model_, vdd, *chain, n, seed, plan);
}

McChainSummary VariationStudy::mc_chain_summary(double vdd, int n_stages,
                                                std::size_t n,
                                                std::uint64_t seed) const {
  const std::vector<double> delays =
      mc_chain_delays(vdd, n_stages, n, seed);

  obs::ScopedTimer timer(obs::timer("study.percentiles"));
  const stats::Summary summary(delays);
  const double ps[] = {50.0, 99.0};
  const auto quantiles = stats::percentiles(delays, ps);
  McChainSummary result{
      .samples = delays.size(),
      .mean = summary.mean(),
      .stddev = summary.stddev(),
      .p50 = quantiles[0],
      .p99 = quantiles[1],
      .three_sigma_over_mu_pct = summary.three_sigma_over_mu_pct(),
  };
  result.ess = static_cast<double>(delays.size());
  if (result.mean != 0.0) {
    result.mean_rel_ci_halfwidth =
        stats::weighted_mean_ci_halfwidth(delays, {}) / result.mean;
  }
  result.p99_rel_ci_halfwidth =
      stats::weighted_percentile_ci(delays, {}, 99.0).rel_halfwidth();
  return result;
}

McChainSummary VariationStudy::mc_chain_summary(
    double vdd, int n_stages, std::size_t n, const stats::SamplingPlan& plan,
    std::uint64_t seed) const {
  if (plan.is_naive()) return mc_chain_summary(vdd, n_stages, n, seed);

  const stats::WeightedSamples sample =
      mc_chain_delays_planned(vdd, n_stages, n, plan, seed);
  const std::vector<double>& x = sample.values;
  const std::vector<double>& w = sample.weights;

  obs::ScopedTimer timer(obs::timer("study.percentiles"));
  const double mean = stats::weighted_mean(x, w);
  // Self-normalized weighted second moment (unit weights when w empty).
  double sw = 0.0, swd2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double wi = w.empty() ? 1.0 : w[i];
    const double d = x[i] - mean;
    sw += wi;
    swd2 += wi * d * d;
  }
  const double stddev = sw > 0.0 ? std::sqrt(swd2 / sw) : 0.0;
  McChainSummary result{
      .samples = x.size(),
      .mean = mean,
      .stddev = stddev,
      .p50 = stats::weighted_percentile(x, w, 50.0),
      .p99 = stats::weighted_percentile(x, w, 99.0),
      .three_sigma_over_mu_pct =
          mean != 0.0 ? 300.0 * stddev / mean : 0.0,
  };
  result.ess = sample.ess();
  if (mean != 0.0) {
    result.mean_rel_ci_halfwidth =
        stats::weighted_mean_ci_halfwidth(x, w) / mean;
  }
  result.p99_rel_ci_halfwidth =
      stats::weighted_percentile_ci(x, w, 99.0).rel_halfwidth();
  return result;
}

AnalyticChainSummary VariationStudy::analytic_chain_summary(
    double vdd, int n_stages) const {
  // An ephemeral evaluator sized to the requested chain: construction is
  // grid-free and the one path-law build is a single 1-D quadrature.
  arch::TimingConfig config;
  config.chain_stages = n_stages;
  const ssta::AnalyticChipStudy study(model_, config);
  const ssta::PathLaw& path = study.path_law(vdd);

  AnalyticChainSummary result;
  result.mean = path.law.mean();
  result.stddev = std::sqrt(path.law.variance());
  result.p50 = path.law.quantile(0.5);
  result.p99 = path.law.quantile(0.99);
  result.three_sigma_over_mu_pct = 300.0 * result.stddev / result.mean;
  result.analytic_error = path.analytic_error;
  return result;
}

}  // namespace ntv::core
