#include "core/variation_study.h"

#include <cmath>

#include "device/dist_cache.h"
#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "stats/descriptive.h"
#include "stats/monte_carlo.h"
#include "stats/percentile.h"

namespace ntv::core {

VariationStudy::VariationStudy(const device::TechNode& node,
                               device::DistributionOptions dist_opt)
    : model_(node), dist_opt_(dist_opt) {}

double VariationStudy::fo4_delay(double vdd) const noexcept {
  return model_.gate_model().fo4_delay(vdd);
}

std::pair<double, double> VariationStudy::with_die(double vdd, double mean,
                                                   double variance) const {
  const auto& p = model_.params();
  const double g = model_.gate_model().sensitivity(vdd);
  const double a = g * p.sigma_vth_sys;
  // S = exp(g*Z)*(1+W), Z~N(0,svs), W~N(0,sms):
  //   E[S]   = exp(a^2/2),   E[S^2] = exp(2 a^2) * (1 + sms^2).
  const double es = std::exp(0.5 * a * a);
  const double es2 =
      std::exp(2.0 * a * a) * (1.0 + p.sigma_mult_sys * p.sigma_mult_sys);
  const double total_mean = es * mean;
  const double total_var = es2 * (variance + mean * mean) -
                           total_mean * total_mean;
  return {total_mean, total_var};
}

double VariationStudy::single_gate_variation_pct(double vdd) const {
  obs::ScopedTimer timer(obs::timer("study.gate_eval"));
  const auto gate = device::cached_gate_distribution(model_, vdd, dist_opt_);
  const auto [m, v] = with_die(vdd, gate->mean(), gate->variance());
  return 300.0 * std::sqrt(v) / m;
}

double VariationStudy::chain_variation_pct(double vdd, int n_stages) const {
  obs::ScopedTimer timer(obs::timer("study.chain_eval"));
  const auto chain =
      device::cached_chain_distribution(model_, vdd, n_stages, dist_opt_);
  const auto [m, v] = with_die(vdd, chain->mean(), chain->variance());
  return 300.0 * std::sqrt(v) / m;
}

VariationPoint VariationStudy::study_point(double vdd, int n_stages) const {
  obs::counter("study.points").increment();
  obs::ScopedTimer timer(obs::timer("study.chain_eval"));
  const auto gate = device::cached_gate_distribution(model_, vdd, dist_opt_);
  const auto chain =
      device::cached_chain_distribution(model_, vdd, n_stages, dist_opt_);
  const auto [gm, gv] = with_die(vdd, gate->mean(), gate->variance());
  const auto [cm, cv] = with_die(vdd, chain->mean(), chain->variance());
  return VariationPoint{
      .vdd = vdd,
      .fo4_delay = fo4_delay(vdd),
      .single_pct = 300.0 * std::sqrt(gv) / gm,
      .chain_pct = 300.0 * std::sqrt(cv) / cm,
      .chain_mean = cm,
  };
}

std::vector<VariationPoint> VariationStudy::study_points(
    std::span<const double> vdds, int n_stages) const {
  std::vector<VariationPoint> points(vdds.size());
  exec::ThreadPool::global().parallel_for(0, vdds.size(), [&](std::size_t i) {
    points[i] = study_point(vdds[i], n_stages);
  });
  return points;
}

std::vector<double> VariationStudy::chain_variation_sweep(
    double vdd, std::span<const int> n_stages) const {
  std::vector<double> pcts(n_stages.size());
  exec::ThreadPool::global().parallel_for(
      0, n_stages.size(), [&](std::size_t i) {
        pcts[i] = chain_variation_pct(vdd, n_stages[i]);
      });
  return pcts;
}

namespace {

/// Shared kernel of the gate/chain delay MCs: per block, draw every row's
/// die state + uniform first (same RNG order as the old one-row-at-a-time
/// closure), then one batched inverse-CDF pass, then the die scaling.
/// Scratch is per worker thread, so nothing allocates after warmup.
std::vector<double> mc_scaled_quantiles(
    const device::VariationModel& model, double vdd,
    const stats::GridDistribution& dist, std::size_t n, std::uint64_t seed) {
  stats::MonteCarloOptions opt;
  opt.seed = seed;
  return stats::monte_carlo_blocks(
      n, 1,
      [&model, vdd, &dist](stats::Xoshiro256pp& rng, std::size_t lo,
                           std::size_t hi, double* out) {
        const std::size_t rows = hi - lo;
        thread_local std::vector<double> scratch;
        if (scratch.size() < 2 * rows) scratch.resize(2 * rows);
        double* scale = scratch.data();
        double* u = scratch.data() + rows;
        for (std::size_t i = 0; i < rows; ++i) {
          const auto die = model.sample_die(rng);
          scale[i] = model.die_scale(vdd, die);
          u[i] = rng.uniform();
        }
        dist.quantile_batch(std::span<const double>(u, rows),
                            std::span<double>(out, rows));
        for (std::size_t i = 0; i < rows; ++i) out[i] = scale[i] * out[i];
      },
      opt);
}

}  // namespace

std::vector<double> VariationStudy::mc_single_gate_delays(
    double vdd, std::size_t n, std::uint64_t seed) const {
  obs::counter("study.mc_points").increment();
  obs::ScopedTimer timer(obs::timer("study.sampling"));
  const auto gate = device::cached_gate_distribution(model_, vdd, dist_opt_);
  return mc_scaled_quantiles(model_, vdd, *gate, n, seed);
}

std::vector<double> VariationStudy::mc_chain_delays(double vdd, int n_stages,
                                                    std::size_t n,
                                                    std::uint64_t seed) const {
  obs::counter("study.mc_points").increment();
  obs::ScopedTimer timer(obs::timer("study.sampling"));
  const auto chain =
      device::cached_chain_distribution(model_, vdd, n_stages, dist_opt_);
  return mc_scaled_quantiles(model_, vdd, *chain, n, seed);
}

McChainSummary VariationStudy::mc_chain_summary(double vdd, int n_stages,
                                                std::size_t n,
                                                std::uint64_t seed) const {
  const std::vector<double> delays =
      mc_chain_delays(vdd, n_stages, n, seed);

  obs::ScopedTimer timer(obs::timer("study.percentiles"));
  const stats::Summary summary(delays);
  const double ps[] = {50.0, 99.0};
  const auto quantiles = stats::percentiles(delays, ps);
  return McChainSummary{
      .samples = delays.size(),
      .mean = summary.mean(),
      .stddev = summary.stddev(),
      .p50 = quantiles[0],
      .p99 = quantiles[1],
      .three_sigma_over_mu_pct = summary.three_sigma_over_mu_pct(),
  };
}

}  // namespace ntv::core
