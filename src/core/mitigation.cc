#include "core/mitigation.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "stats/merge.h"
#include "stats/monte_carlo.h"
#include "stats/percentile.h"
#include "stats/root_find.h"
#include "stats/shard.h"

namespace ntv::core {
namespace {

/// Chip rows this shard owns: row c comes from substream block
/// c / kMonteCarloBlock, and block ownership is the shard partition.
std::vector<std::size_t> owned_chips(std::size_t n_chips) {
  std::vector<std::size_t> owned;
  owned.reserve(n_chips / static_cast<std::size_t>(stats::shard().count) +
                stats::kMonteCarloBlock);
  for (std::size_t c = 0; c < n_chips; ++c) {
    if (stats::shard_owns_block(c / stats::kMonteCarloBlock)) {
      owned.push_back(c);
    }
  }
  return owned;
}

}  // namespace

MitigationStudy::MitigationStudy(const device::TechNode& node,
                                 MitigationConfig config)
    : model_(node), config_(config) {
  // Building the closed-form evaluator up front (rather than lazily)
  // makes an invalid backend/correlation combination fail at construction
  // instead of deep inside a sweep.
  if (config_.backend == ssta::Backend::kAnalytic)
    analytic_.emplace(model_, config_.timing);
}

std::int64_t MitigationStudy::vkey(double vdd) const noexcept {
  // Quantize to 0.1 uV so float noise cannot split cache entries.
  return static_cast<std::int64_t>(std::llround(vdd * 1e7));
}

const arch::ChipDelaySampler& MitigationStudy::sampler(double vdd) const {
  return samplers_.get_or_build(vkey(vdd), [&] {
    return arch::ChipDelaySampler(model_, vdd, config_.timing, config_.dist);
  });
}

arch::ChipMcResult MitigationStudy::mc_chip(double vdd, int spares) const {
  stats::MonteCarloOptions opt;
  opt.seed = config_.seed;
  // The nominal-voltage sign-off is the shared REFERENCE of every
  // mitigation estimate (Tables 1-4 normalize to it), and its decisive
  // lane quantile (~1 - 1e-4 for a bare max-of-width chip) sits beyond
  // the importance ladder's steepest knot — a tilt tuned for the NTV
  // decision band would only add weight noise there, and that noise
  // would shift every cell of the sweep in lockstep. So the reference
  // is always estimated with the naive plan; variance-reduced plans
  // apply to the per-voltage cells they were designed for.
  const bool reference = vkey(vdd) == vkey(node().nominal_vdd);
  return arch::mc_chip_delays(sampler(vdd), config_.chip_samples,
                              config_.timing.simd_width, spares, opt,
                              reference ? stats::SamplingPlan{}
                                        : config_.plan);
}

double MitigationStudy::chip_delay_p99(double vdd, int spares) const {
  return p99_cache_.get_or_build(std::make_pair(vkey(vdd), spares), [&] {
    if (analytic_) {
      const std::string mv =
          std::to_string(static_cast<int>(std::llround(vdd * 1000.0)));
      obs::gauge("analytic.err." + mv + "mV")
          .set(analytic_->analytic_error(vdd));
      return analytic_->signoff_delay(vdd, config_.signoff_percentile,
                                      spares);
    }
    // Sharded runs (stats/shard.h): this cell is mergeable whenever its
    // sample is unweighted — always at the nominal reference (mc_chip
    // pins the naive plan there), else only under the naive plan.
    const bool reference = vkey(vdd) == vkey(node().nominal_vdd);
    const bool shardable = reference || config_.plan.is_naive();
    if (stats::shard_worker()) {
      if (shardable) {
        emit_p99_sketch(shard_cell_key("p99", vdd, spares),
                        mc_chip(vdd, spares).delays);
      }
      return 0.0;  // Worker reports are never consumed; the tape is.
    }
    if (shardable && stats::shard_merge()) {
      const auto merged =
          merged_chip_delay_p99(shard_cell_key("p99", vdd, spares));
      if (merged) return *merged;
    }
    return mc_chip(vdd, spares).percentile(config_.signoff_percentile);
  });
}

std::string MitigationStudy::shard_cell_key(const char* kind, double vdd,
                                            int detail) const {
  char buf[256];
  std::snprintf(
      buf, sizeof buf, "%s|%.*s|v=%lld|seed=%llu|n=%zu|w=%d|d=%d|p=%.17g|c=%d",
      kind, static_cast<int>(node().name.size()), node().name.data(),
      static_cast<long long>(vkey(vdd)),
      static_cast<unsigned long long>(config_.seed), config_.chip_samples,
      config_.timing.simd_width, detail, config_.signoff_percentile,
      static_cast<int>(config_.timing.correlation));
  return buf;
}

void MitigationStudy::emit_p99_sketch(const std::string& key,
                                      std::span<const double> delays) const {
  const std::vector<std::size_t> owned = owned_chips(delays.size());
  std::vector<double> values;
  values.reserve(owned.size());
  for (const std::size_t c : owned) values.push_back(delays[c]);
  const std::size_t keep =
      stats::tail_keep(delays.size(), config_.signoff_percentile);
  const stats::TailSketch sketch =
      stats::tail_sketch(values, delays.size(), keep);
  if (stats::ShardTapeWriter* tape = stats::shard_tape()) {
    tape->put(key, stats::serialize_tails({&sketch, 1}));
  }
}

std::optional<double> MitigationStudy::merged_chip_delay_p99(
    const std::string& key) const {
  const auto payloads = stats::shard_payloads(key);
  if (payloads.empty()) return std::nullopt;
  std::vector<stats::TailSketch> parts;
  parts.reserve(payloads.size());
  for (const auto payload : payloads) {
    auto columns = stats::deserialize_tails(payload);
    if (columns.size() != 1) return std::nullopt;
    parts.push_back(std::move(columns.front()));
  }
  const std::size_t keep =
      stats::tail_keep(config_.chip_samples, config_.signoff_percentile);
  const auto merged = stats::merge_tails(parts, keep);
  if (!merged) return std::nullopt;
  return stats::percentile_from_tail(*merged, config_.signoff_percentile);
}

double MitigationStudy::fo4_unit(double vdd) const {
  return analytic_ ? analytic_->fo4_unit(vdd) : sampler(vdd).fo4_unit();
}

double MitigationStudy::fo4_chip_delay_p99(double vdd, int spares) const {
  return chip_delay_p99(vdd, spares) / fo4_unit(vdd);
}

double MitigationStudy::performance_drop_pct(double vdd) const {
  const double at_fv = fo4_chip_delay_p99(node().nominal_vdd);
  const double at_ntv = fo4_chip_delay_p99(vdd);
  return 100.0 * (at_ntv - at_fv) / at_fv;
}

double MitigationStudy::target_delay(double vdd) const {
  // The normalized sign-off delay of the nominal-voltage system, expressed
  // in absolute time at `vdd` (Section 4.2's scaled baseline).
  return fo4_chip_delay_p99(node().nominal_vdd) * fo4_unit(vdd);
}

DuplicationResult MitigationStudy::required_spares(double vdd,
                                                   int max_spares) const {
  const double baseline = fo4_chip_delay_p99(node().nominal_vdd);

  if (analytic_) {
    // Closed-form sizing: one pointwise chip-CDF probe per candidate
    // spare count, no sampling, so the ESS/CI diagnostics of the Monte
    // Carlo path are vacuous (reported as zero).
    const double target = baseline * fo4_unit(vdd);
    const int alpha = analytic_->required_spares(
        vdd, target, config_.signoff_percentile, max_spares);
    DuplicationResult result;
    result.feasible = alpha <= max_spares;
    result.spares = alpha;
    result.area_overhead = config_.area_power.duplication_area_overhead(alpha);
    result.power_overhead =
        config_.area_power.duplication_power_overhead(alpha);
    const std::string mv =
        std::to_string(static_cast<int>(std::llround(vdd * 1000.0)));
    obs::gauge("analytic.err." + mv + "mV")
        .set(analytic_->analytic_error(vdd));
    return result;
  }

  // Sharded runs: the naive plan's per-alpha columns are condensed into
  // mergeable tail sketches (stats/merge.h). A worker under any other
  // plan returns a dummy immediately — the weighted self-normalization
  // is not bit-stable under splitting, so the merger recomputes locally.
  const bool shard_stats = config_.plan.is_naive();
  if (stats::shard_worker() && !shard_stats) return DuplicationResult{};
  std::string cell_key;
  if (shard_stats && (stats::shard_worker() || stats::shard_merge())) {
    cell_key = shard_cell_key("spares", vdd, max_spares);
  }
  if (!cell_key.empty() && stats::shard_merge()) {
    const auto merged =
        merged_required_spares(cell_key, vdd, max_spares, baseline);
    if (merged) return *merged;
  }

  // One Monte Carlo run with width + max_spares lanes yields the sign-off
  // delay for EVERY spare count via per-chip prefix curves.
  const int width = config_.timing.simd_width;
  const std::size_t row_width =
      static_cast<std::size_t>(width) + static_cast<std::size_t>(max_spares);
  const auto& smp = sampler(vdd);

  stats::MonteCarloOptions opt;
  opt.seed = config_.seed;

  // Planned runs carry per-chip likelihood-ratio weights (rows are
  // disjoint, so workers write `weights` race-free).
  std::vector<double> weights;
  std::optional<stats::ScrambledSobol> sobol;
  if (config_.plan.strategy == stats::SamplingStrategy::kQmc)
    sobol.emplace(config_.seed);
  if (config_.plan.is_weighted()) weights.assign(config_.chip_samples, 1.0);
  const stats::ScrambledSobol* qmc = sobol ? &*sobol : nullptr;

  // Phase timers: fill (Monte Carlo rows), curves (prefix extraction +
  // transpose), search (percentile bisection + CI). Published so run
  // reports break the sweep's wall time down without a profiler.
  static obs::Timer& fill_timer = obs::timer("mitigation.fill.wall");
  static obs::Timer& curves_timer = obs::timer("mitigation.curves.wall");
  static obs::Timer& search_timer = obs::timer("mitigation.search.wall");

  // Uninitialized on purpose (monte_carlo_blocks_into's buffer contract):
  // an unsharded run writes every row, and a shard worker's unowned rows
  // are never read. Value-initializing here would page-fault the whole
  // row store in every worker — serial work --shards exists to divide.
  std::unique_ptr<double[]> rows(
      new double[config_.chip_samples * row_width]);
  {
  obs::ScopedTimer fill_scope(fill_timer);
  if (config_.timing.correlation == arch::DieCorrelation::kIndependentPaths) {
    // SoA block path (mirrors arch::mc_chip_delay_sweep): one four-lane
    // substream per block, one flat quantile pass through the SIMD
    // kernels per block. Deterministic in (seed, block) alone.
    const std::uint64_t seed = config_.seed;
    const std::size_t n_rows = config_.chip_samples;
    double* w = weights.empty() ? nullptr : weights.data();
    stats::monte_carlo_blocks_into(
        rows.get(), config_.chip_samples, row_width,
        [&smp, this, w, qmc, row_width, n_rows, seed](
            stats::Xoshiro256pp&, std::size_t lo, std::size_t hi,
            double* out) {
          stats::Xoshiro256ppX4 rng4 =
              stats::substream4(seed, lo / stats::kMonteCarloBlock);
          smp.sample_lane_block(rng4, config_.plan, lo, hi, n_rows,
                                row_width, out, w == nullptr ? nullptr : w + lo,
                                qmc);
        },
        opt);
  } else {
    std::function<void(stats::Xoshiro256pp&, std::size_t, double*)> fill;
    if (config_.plan.is_naive()) {
      fill = [&smp, row_width](stats::Xoshiro256pp& rng, std::size_t,
                               double* out) {
        smp.sample_lanes(rng, std::span<double>(out, row_width));
      };
    } else {
      const std::size_t n_rows = config_.chip_samples;
      fill = [&smp, this, &weights, qmc, row_width, n_rows](
                 stats::Xoshiro256pp& rng, std::size_t row, double* out) {
        const double w = smp.sample_lanes_planned(
            rng, config_.plan, row, n_rows, std::span<double>(out, row_width),
            qmc);
        if (!weights.empty()) weights[row] = w;
      };
    }
    stats::monte_carlo_rows_into(rows.get(), config_.chip_samples, row_width,
                                 fill, opt);
  }
  }

  // Flat alpha-major curve store: spare count a occupies
  // [a*n_chips, (a+1)*n_chips). Chips extract their prefix curves in
  // TILES: each tile writes its curves chip-major into a thread-local
  // scratch, then transposes tile-sequentially into the store. The
  // per-chip direct write (n_alpha scattered stores, one cache line each,
  // per chip) dominated this function's non-MC wall time; the tiled
  // transpose touches each destination line once per tile instead.
  const std::size_t n_alpha = static_cast<std::size_t>(max_spares) + 1;
  const std::size_t n_chips = config_.chip_samples;
  // Same uninitialized-buffer contract as `rows`: unsharded runs write
  // every tile, workers only read the tiles they wrote.
  std::unique_ptr<double[]> delays_by_alpha(new double[n_alpha * n_chips]);
  constexpr std::size_t kTile = 128;
  const std::size_t n_tiles = (n_chips + kTile - 1) / kTile;
  {
  obs::ScopedTimer curves_scope(curves_timer);
  exec::ThreadPool::global().parallel_for(
      0, n_tiles,
      [&](std::size_t tile) {
        const std::size_t chip0 = tile * kTile;
        // A worker skips whole tiles it does not own: kTile rows span
        // exactly one shard ownership group (kShardBlockGroup blocks),
        // so curve extraction scales 1/N like the fill.
        if (!stats::shard_owns_block(chip0 / stats::kMonteCarloBlock)) {
          return;
        }
        const std::size_t chips = std::min(kTile, n_chips - chip0);
        thread_local std::vector<double> curves;
        curves.resize(kTile * n_alpha);
        arch::ChipDelaySampler::chip_delay_curves_block(
            rows.get() + chip0 * row_width, chips, row_width, width,
            curves.data(), n_alpha);
        for (std::size_t a = 0; a < n_alpha; ++a) {
          double* dst = delays_by_alpha.get() + a * n_chips + chip0;
          const double* src = curves.data() + a;
          for (std::size_t c = 0; c < chips; ++c) {
            dst[c] = src[c * n_alpha];
          }
        }
      },
      /*grain=*/1);
  }

  if (stats::shard_worker()) {
    // Condense the owned chips of every alpha column into tail sketches
    // and tape them; the search itself runs on the merger.
    const std::vector<std::size_t> owned = owned_chips(n_chips);
    const std::size_t keep =
        stats::tail_keep(n_chips, config_.signoff_percentile);
    std::vector<stats::TailSketch> columns(n_alpha);
    exec::ThreadPool::global().parallel_for(0, n_alpha, [&](std::size_t a) {
      std::vector<double> values;
      values.reserve(owned.size());
      const double* column = delays_by_alpha.get() + a * n_chips;
      for (const std::size_t c : owned) values.push_back(column[c]);
      columns[a] = stats::tail_sketch(values, n_chips, keep);
    });
    if (stats::ShardTapeWriter* tape = stats::shard_tape()) {
      tape->put(cell_key, stats::serialize_tails(columns));
    }
    return DuplicationResult{};
  }

  const auto alpha_delays = [&](std::size_t a) {
    return std::span<const double>(delays_by_alpha.get() + a * n_chips,
                                   n_chips);
  };
  const double fo4 = smp.fo4_unit();
  auto meets = [&](long alpha) {
    const std::span<const double> delays =
        alpha_delays(static_cast<std::size_t>(alpha));
    const double p99 =
        weights.empty()
            ? stats::percentile(delays, config_.signoff_percentile)
            : stats::weighted_percentile(delays, weights,
                                         config_.signoff_percentile);
    return p99 / fo4 <= baseline;
  };

  DuplicationResult result;
  obs::ScopedTimer search_scope(search_timer);
  const long alpha = stats::smallest_true(meets, 0, max_spares);
  result.ess = weights.empty()
                   ? static_cast<double>(config_.chip_samples)
                   : stats::effective_sample_size(weights);
  {
    // Convergence diagnostic at the chosen (or capped) spare count, also
    // published to the obs registry so run reports carry it per voltage.
    const std::size_t a =
        static_cast<std::size_t>(std::min(alpha, static_cast<long>(
                                                     max_spares)));
    const stats::QuantileCi ci = stats::weighted_percentile_ci(
        alpha_delays(a), weights, config_.signoff_percentile);
    result.p99_rel_ci_halfwidth = ci.rel_halfwidth();
    const std::string mv =
        std::to_string(static_cast<int>(std::llround(vdd * 1000.0)));
    obs::gauge("mitigation.ess." + mv + "mV").set(result.ess);
    obs::gauge("mitigation.p99_rel_ci." + mv + "mV")
        .set(result.p99_rel_ci_halfwidth);
  }
  if (alpha > max_spares) {
    result.feasible = false;
    result.spares = max_spares + 1;
    result.area_overhead =
        config_.area_power.duplication_area_overhead(max_spares + 1);
    result.power_overhead =
        config_.area_power.duplication_power_overhead(max_spares + 1);
    return result;
  }
  result.feasible = true;
  result.spares = static_cast<int>(alpha);
  result.area_overhead =
      config_.area_power.duplication_area_overhead(result.spares);
  result.power_overhead =
      config_.area_power.duplication_power_overhead(result.spares);
  return result;
}

std::optional<DuplicationResult> MitigationStudy::merged_required_spares(
    const std::string& key, double vdd, int max_spares,
    double baseline) const {
  const auto payloads = stats::shard_payloads(key);
  if (payloads.empty()) return std::nullopt;

  const auto n_alpha = static_cast<std::size_t>(max_spares) + 1;
  std::vector<std::vector<stats::TailSketch>> shards;
  shards.reserve(payloads.size());
  for (const auto payload : payloads) {
    auto columns = stats::deserialize_tails(payload);
    if (columns.size() != n_alpha) return std::nullopt;
    shards.push_back(std::move(columns));
  }

  const std::size_t keep =
      stats::tail_keep(config_.chip_samples, config_.signoff_percentile);
  std::vector<stats::TailSketch> merged(n_alpha);
  for (std::size_t a = 0; a < n_alpha; ++a) {
    std::vector<stats::TailSketch> parts;
    parts.reserve(shards.size());
    for (auto& shard : shards) parts.push_back(std::move(shard[a]));
    auto column = stats::merge_tails(parts, keep);
    if (!column) return std::nullopt;
    merged[a] = std::move(*column);
  }

  // From here the cell replays the unsharded search bit for bit: the
  // merged tails hold the exact upper order statistics of the full
  // columns, and percentile_from_tail / quantile_ci_from_tail use the
  // same interpolation arithmetic as the full-column path.
  const double fo4 = sampler(vdd).fo4_unit();
  bool probes_ok = true;
  auto meets = [&](long alpha) {
    const auto p99 = stats::percentile_from_tail(
        merged[static_cast<std::size_t>(alpha)], config_.signoff_percentile);
    if (!p99) {
      probes_ok = false;
      return true;
    }
    return *p99 / fo4 <= baseline;
  };

  DuplicationResult result;
  const long alpha = stats::smallest_true(meets, 0, max_spares);
  if (!probes_ok) return std::nullopt;
  result.ess = static_cast<double>(config_.chip_samples);
  {
    const std::size_t a = static_cast<std::size_t>(
        std::min(alpha, static_cast<long>(max_spares)));
    const auto ci =
        stats::quantile_ci_from_tail(merged[a], config_.signoff_percentile);
    if (!ci) return std::nullopt;
    result.p99_rel_ci_halfwidth = ci->rel_halfwidth();
    const std::string mv =
        std::to_string(static_cast<int>(std::llround(vdd * 1000.0)));
    obs::gauge("mitigation.ess." + mv + "mV").set(result.ess);
    obs::gauge("mitigation.p99_rel_ci." + mv + "mV")
        .set(result.p99_rel_ci_halfwidth);
  }
  if (alpha > max_spares) {
    result.feasible = false;
    result.spares = max_spares + 1;
    result.area_overhead =
        config_.area_power.duplication_area_overhead(max_spares + 1);
    result.power_overhead =
        config_.area_power.duplication_power_overhead(max_spares + 1);
    return result;
  }
  result.feasible = true;
  result.spares = static_cast<int>(alpha);
  result.area_overhead =
      config_.area_power.duplication_area_overhead(result.spares);
  result.power_overhead =
      config_.area_power.duplication_power_overhead(result.spares);
  return result;
}

VoltageMarginResult MitigationStudy::required_voltage_margin(
    double vdd, int spares, double max_margin) const {
  const double target = target_delay(vdd);

  auto excess = [&](double margin) {
    return chip_delay_p99(vdd + margin, spares) - target;
  };

  VoltageMarginResult result;
  if (excess(0.0) <= 0.0) {
    result.margin = 0.0;
    result.feasible = true;
    result.power_overhead = 0.0;
    return result;
  }

  // Bracket the root by doubling from 1 mV.
  double hi = 1e-3;
  while (hi <= max_margin && excess(hi) > 0.0) hi *= 2.0;
  if (hi > max_margin) {
    result.feasible = false;
    result.margin = max_margin;
    result.power_overhead =
        config_.area_power.vmargin_power_overhead(vdd, max_margin);
    return result;
  }

  stats::RootOptions ropt;
  ropt.x_tol = 1e-5;  // 10 uV resolution.
  const auto root = stats::brent(excess, 0.0, hi, ropt);

  // Round the margin UP to the resolution so the target is actually met.
  double margin = root.x;
  if (excess(margin) > 0.0) margin += ropt.x_tol;
  result.margin = margin;
  result.feasible = true;
  result.power_overhead =
      config_.area_power.vmargin_power_overhead(vdd, margin);
  return result;
}

FrequencyMarginResult MitigationStudy::frequency_margin(double vdd) const {
  FrequencyMarginResult result;
  result.t_clk = target_delay(vdd);
  result.t_va_clk = chip_delay_p99(vdd);
  result.drop_pct = 100.0 * (result.t_va_clk - result.t_clk) / result.t_clk;
  return result;
}

std::vector<CombinedChoice> MitigationStudy::explore_combined(
    double vdd, std::span<const int> spare_counts, double max_margin) const {
  // Prime the shared target once; otherwise every spare-count task would
  // race to build the nominal baseline (duplicate Monte Carlo work).
  (void)target_delay(vdd);

  std::vector<CombinedChoice> choices(spare_counts.size());
  exec::ThreadPool::global().parallel_for(
      0, spare_counts.size(), [&](std::size_t i) {
        const int spares = spare_counts[i];
        const auto vm = required_voltage_margin(vdd, spares, max_margin);
        CombinedChoice choice;
        choice.spares = spares;
        choice.margin = vm.margin;
        choice.feasible = vm.feasible;
        choice.power_overhead = config_.area_power.combined_power_overhead(
            spares, vdd, vm.feasible ? vm.margin : max_margin);
        choices[i] = choice;
      });
  return choices;
}

std::vector<double> MitigationStudy::performance_drop_sweep(
    std::span<const double> vdds) const {
  (void)fo4_chip_delay_p99(node().nominal_vdd);

  std::vector<double> drops(vdds.size());
  exec::ThreadPool::global().parallel_for(0, vdds.size(), [&](std::size_t i) {
    drops[i] = performance_drop_pct(vdds[i]);
  });
  return drops;
}

std::vector<DuplicationResult> MitigationStudy::required_spares_sweep(
    std::span<const double> vdds, int max_spares) const {
  // Shared across every grid point: the nominal-voltage sign-off baseline.
  (void)fo4_chip_delay_p99(node().nominal_vdd);

  std::vector<DuplicationResult> results(vdds.size());
  exec::ThreadPool::global().parallel_for(0, vdds.size(), [&](std::size_t i) {
    results[i] = required_spares(vdds[i], max_spares);
  });
  return results;
}

std::vector<VoltageMarginResult> MitigationStudy::required_voltage_margin_sweep(
    std::span<const double> vdds, int spares, double max_margin) const {
  (void)fo4_chip_delay_p99(node().nominal_vdd);

  std::vector<VoltageMarginResult> results(vdds.size());
  exec::ThreadPool::global().parallel_for(0, vdds.size(), [&](std::size_t i) {
    results[i] = required_voltage_margin(vdds[i], spares, max_margin);
  });
  return results;
}

std::vector<FrequencyMarginResult> MitigationStudy::frequency_margin_sweep(
    std::span<const double> vdds) const {
  (void)fo4_chip_delay_p99(node().nominal_vdd);

  std::vector<FrequencyMarginResult> results(vdds.size());
  exec::ThreadPool::global().parallel_for(0, vdds.size(), [&](std::size_t i) {
    results[i] = frequency_margin(vdds[i]);
  });
  return results;
}

}  // namespace ntv::core
