// Circuit-level variation study (Section 3.1 of the paper).
//
// Reproduces the quantities behind Figs. 1, 2 and 11: delay distributions
// and 3sigma/mu of a single FO4 inverter and of FO4 chains, as functions
// of supply voltage, chain length and technology node. Both an analytic
// (distribution-level, Monte-Carlo-noise-free) and a sampling path are
// provided; the paper's own methodology (1,000 HSPICE samples) corresponds
// to the sampling path.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "device/gate_table.h"
#include "device/variation.h"
#include "stats/variance_reduction.h"

namespace ntv::core {

/// One row of the variation study at a given supply voltage.
struct VariationPoint {
  double vdd = 0.0;          ///< Supply voltage [V].
  double fo4_delay = 0.0;    ///< Nominal FO4 delay [s].
  double single_pct = 0.0;   ///< Single-gate 3sigma/mu [%].
  double chain_pct = 0.0;    ///< Chain 3sigma/mu [%].
  double chain_mean = 0.0;   ///< Mean chain delay [s].
};

/// Monte Carlo cross-check of one chain study point: sample statistics and
/// the order statistics the paper signs off on. Deterministic given
/// (vdd, n_stages, n, seed).
struct McChainSummary {
  std::size_t samples = 0;   ///< Sample count drawn.
  double mean = 0.0;         ///< Sample mean chain delay [s].
  double stddev = 0.0;       ///< Sample standard deviation [s].
  double p50 = 0.0;          ///< Median chain delay [s].
  double p99 = 0.0;          ///< 99th-percentile chain delay [s].
  double three_sigma_over_mu_pct = 0.0;  ///< Sampled 3sigma/mu [%].
  /// Convergence diagnostics: Kish effective sample size (== samples for
  /// unweighted plans) and relative 95 % CI half-widths of the mean and
  /// the 99th percentile.
  double ess = 0.0;
  double mean_rel_ci_halfwidth = 0.0;
  double p99_rel_ci_halfwidth = 0.0;
};

/// Closed-form counterpart of McChainSummary: the same chain-delay
/// statistics read off the moment-matched shifted-lognormal path law
/// (ssta/analytic_backend.h) instead of a Monte Carlo sample. Exact in
/// mean and stddev, quantiles carry the three-moment fit residual
/// (reported as analytic_error).
struct AnalyticChainSummary {
  double mean = 0.0;         ///< Chain-delay mean [s].
  double stddev = 0.0;       ///< Chain-delay standard deviation [s].
  double p50 = 0.0;          ///< Median chain delay [s].
  double p99 = 0.0;          ///< 99th-percentile chain delay [s].
  double three_sigma_over_mu_pct = 0.0;  ///< 3sigma/mu [%].
  double analytic_error = 0.0;  ///< Relative 4th-moment fit mismatch.
};

/// Variation study of one technology node.
class VariationStudy {
 public:
  explicit VariationStudy(const device::TechNode& node,
                          device::DistributionOptions dist_opt = {});

  const device::VariationModel& model() const noexcept { return model_; }
  const device::TechNode& node() const noexcept { return model_.node(); }

  /// Nominal FO4 delay at `vdd` [s].
  double fo4_delay(double vdd) const noexcept;

  /// Analytic 3sigma/mu [%] of a single gate's delay at `vdd`, including
  /// both within-die random and die-to-die systematic variation.
  double single_gate_variation_pct(double vdd) const;

  /// Analytic 3sigma/mu [%] of an `n_stages` chain at `vdd`.
  double chain_variation_pct(double vdd, int n_stages) const;

  /// Full study row at `vdd` for the standard 50-stage chain.
  VariationPoint study_point(double vdd, int n_stages = 50) const;

  /// Study rows for a whole voltage grid, computed as parallel tasks on
  /// the shared thread pool. Element i is study_point(vdds[i], n_stages);
  /// results are identical to the serial loop for any worker count.
  std::vector<VariationPoint> study_points(std::span<const double> vdds,
                                           int n_stages = 50) const;

  /// Chain 3sigma/mu [%] for a whole grid of chain lengths at one voltage
  /// (Fig. 11 columns), fanned out on the shared thread pool. Element i is
  /// chain_variation_pct(vdd, n_stages[i]).
  std::vector<double> chain_variation_sweep(double vdd,
                                            std::span<const int> n_stages)
      const;

  /// Monte Carlo sample of single-gate delays [s] (paper Fig. 1(a)).
  std::vector<double> mc_single_gate_delays(double vdd, std::size_t n,
                                            std::uint64_t seed = 1) const;

  /// Monte Carlo sample of `n_stages`-chain delays [s] (Fig. 1(b)).
  std::vector<double> mc_chain_delays(double vdd, int n_stages,
                                      std::size_t n,
                                      std::uint64_t seed = 2) const;

  /// Variance-reduced chain-delay sample: the delay uniform of row i is
  /// drawn under `plan` (die-systematic draws stay pseudorandom), and the
  /// result carries the likelihood-ratio weights for weighted plans. The
  /// naive plan reproduces mc_chain_delays byte for byte.
  stats::WeightedSamples mc_chain_delays_planned(
      double vdd, int n_stages, std::size_t n,
      const stats::SamplingPlan& plan, std::uint64_t seed = 2) const;

  /// Draws `n` chain delays and reduces them to summary + percentile
  /// statistics; the sampling and percentile-extraction stages are timed
  /// separately ("study.sampling" / "study.percentiles" metrics). The
  /// plan-taking overload uses (self-normalized) weighted estimators and
  /// fills the convergence-diagnostic fields.
  McChainSummary mc_chain_summary(double vdd, int n_stages, std::size_t n,
                                  std::uint64_t seed = 2) const;
  McChainSummary mc_chain_summary(double vdd, int n_stages, std::size_t n,
                                  const stats::SamplingPlan& plan,
                                  std::uint64_t seed = 2) const;

  /// Monte-Carlo-free chain summary from the analytic backend's path law
  /// — the `--backend analytic` twin of mc_chain_summary. Microseconds
  /// per call; cross-validated against the sampled path by the ssta
  /// validation experiments.
  AnalyticChainSummary analytic_chain_summary(double vdd,
                                              int n_stages = 50) const;

 private:
  /// Combines grid moments with the die-systematic factor
  /// S = exp(g*dvth_sys)*(1+eps_sys): returns {mean, variance} of S*X.
  std::pair<double, double> with_die(double vdd, double mean,
                                     double variance) const;

  device::VariationModel model_;
  device::DistributionOptions dist_opt_;
};

}  // namespace ntv::core
