#include "core/yield.h"

#include <cmath>
#include <stdexcept>

#include "exec/thread_pool.h"

namespace ntv::core {

namespace {

// The closed-form chip law only exists for independent paths; under the
// shared-die correlation the inner study runs Monte Carlo and the
// analytic request is honoured by the ISLE tail sampler instead.
MitigationConfig inner_config(MitigationConfig config) {
  if (config.backend == ssta::Backend::kAnalytic &&
      config.timing.correlation == arch::DieCorrelation::kSharedDie)
    config.backend = ssta::Backend::kMonteCarlo;
  return config;
}

}  // namespace

YieldAnalysis::YieldAnalysis(const device::TechNode& node,
                             MitigationConfig config)
    : requested_backend_(config.backend), study_(node, inner_config(config)) {}

const stats::Ecdf& YieldAnalysis::ecdf(double vdd, int spares) const {
  const auto key =
      std::make_pair(static_cast<std::int64_t>(std::llround(vdd * 1e7)),
                     spares);
  return ecdfs_.get_or_build(
      key, [&] { return stats::Ecdf(study_.mc_chip(vdd, spares).delays); });
}

void YieldAnalysis::prime(std::span<const double> vdds,
                          std::span<const int> spares) const {
  const std::size_t n = vdds.size() * spares.size();
  exec::ThreadPool::global().parallel_for(0, n, [&](std::size_t i) {
    (void)ecdf(vdds[i / spares.size()],
               spares[i % spares.size()]);
  });
}

double YieldAnalysis::yield(double vdd, double t_clk, int spares) const {
  if (t_clk <= 0.0)
    throw std::invalid_argument("YieldAnalysis::yield: t_clk must be > 0");
  if (const auto* analytic = study_.analytic())
    return analytic->chip_cdf(vdd, spares, t_clk);
  return ecdf(vdd, spares)(t_clk);
}

double YieldAnalysis::t_clk_for_yield(double vdd, double target_yield,
                                      int spares) const {
  if (!(target_yield > 0.0) || target_yield > 1.0)
    throw std::invalid_argument(
        "YieldAnalysis::t_clk_for_yield: target in (0, 1] required");
  if (const auto* analytic = study_.analytic())
    return analytic->signoff_delay(vdd, 100.0 * target_yield, spares);
  return ecdf(vdd, spares).quantile(target_yield);
}

ssta::TailYieldEstimate YieldAnalysis::tail_fail(double vdd, double t_clk,
                                                 int spares) const {
  if (t_clk <= 0.0)
    throw std::invalid_argument(
        "YieldAnalysis::tail_fail: t_clk must be > 0");
  if (const auto* analytic = study_.analytic()) {
    ssta::TailYieldEstimate est;
    est.fail_prob = analytic->tail_fail_prob(vdd, t_clk, spares);
    est.ess = 0.0;
    est.ci_halfwidth = 0.0;
    return est;
  }
  const MitigationConfig& config = study_.config();
  if (requested_backend_ == ssta::Backend::kAnalytic) {
    // Shared-die regime: importance-sample the die factor (ssta/isle.h).
    return ssta::isle_tail_yield(study_.model(), vdd, config.timing, t_clk,
                                 spares, config.isle);
  }
  ssta::TailYieldEstimate est;
  const double p = 1.0 - ecdf(vdd, spares)(t_clk);
  const auto n = static_cast<double>(config.chip_samples);
  est.fail_prob = p;
  est.ess = n;
  est.ci_halfwidth = 1.959963984540054 * std::sqrt(p * (1.0 - p) / n);
  return est;
}

std::vector<YieldPoint> YieldAnalysis::curve(double vdd, double t_lo,
                                             double t_hi, int points,
                                             int spares) const {
  if (points < 2 || t_hi <= t_lo)
    throw std::invalid_argument("YieldAnalysis::curve: bad range");
  std::vector<YieldPoint> out;
  out.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    const double t =
        t_lo + (t_hi - t_lo) * static_cast<double>(i) / (points - 1);
    out.push_back({t, yield(vdd, t, spares)});
  }
  return out;
}

std::vector<double> YieldAnalysis::bin_fractions(
    double vdd, std::span<const double> bin_edges, int spares) const {
  if (bin_edges.empty())
    throw std::invalid_argument("YieldAnalysis::bin_fractions: no bins");
  for (std::size_t i = 1; i < bin_edges.size(); ++i) {
    if (bin_edges[i] <= bin_edges[i - 1])
      throw std::invalid_argument(
          "YieldAnalysis::bin_fractions: edges must ascend");
  }
  std::vector<double> fractions;
  fractions.reserve(bin_edges.size() + 1);
  double covered = 0.0;
  for (double edge : bin_edges) {
    const double cumulative = yield(vdd, edge, spares);
    fractions.push_back(cumulative - covered);
    covered = cumulative;
  }
  fractions.push_back(1.0 - covered);  // Scrap.
  return fractions;
}

}  // namespace ntv::core
