// Architecture-level variation analysis and mitigation (Sections 3.2, 4).
//
// Everything the paper's evaluation reports flows through this class:
//
//  * chip-delay distributions of the N-wide SIMD datapath (Fig. 3, 5, 6);
//  * performance drop at near-threshold voltage vs nominal (Fig. 4);
//  * structural duplication sizing + overhead (Table 1, Fig. 5);
//  * voltage margining (Table 2, Fig. 6) and its power overhead;
//  * frequency margining (Table 4);
//  * combined duplication + margining design choices (Table 3, Fig. 8);
//  * the overhead comparison between techniques (Fig. 7).
//
// Sign-off point: the `signoff_percentile` (99 %) of the Monte Carlo
// chip-delay distribution, exactly as in the paper. All Monte Carlo runs
// use common random numbers (one seed), so delay is a smooth monotone
// function of supply voltage and the margin search is well-posed.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "arch/area_power.h"
#include "arch/simd_timing.h"
#include "device/tech_node.h"
#include "device/variation.h"
#include "exec/cache.h"
#include "ssta/analytic_backend.h"
#include "ssta/backend.h"
#include "ssta/isle.h"

namespace ntv::core {

/// Experiment configuration.
struct MitigationConfig {
  arch::TimingConfig timing;            ///< 128 lanes, 100 paths, 50 stages.
  std::size_t chip_samples = 10000;     ///< Monte Carlo chips per point.
  double signoff_percentile = 99.0;     ///< Delay sign-off point [%].
  std::uint64_t seed = 0x5EED0FD1E;     ///< Common-random-numbers seed.
  arch::AreaPowerModel area_power;      ///< Diet SODA overhead budget.
  device::DistributionOptions dist;     ///< Grid resolution.
  /// Variance-reduction strategy for every Monte Carlo run of the study.
  /// The default (naive) plan keeps all results byte-identical to the
  /// historical sampler; the importance plan reaches the same sign-off
  /// percentiles with ~1/5 of the samples (docs/SAMPLING.md).
  stats::SamplingPlan plan;
  /// Evaluation backend. kMonteCarlo (default) samples chip delays and
  /// keeps every historical result byte-identical; kAnalytic answers the
  /// same sign-off questions from the closed-form SSTA chip law
  /// (ssta/analytic_backend.h) — no sampling, orders of magnitude faster,
  /// with the fit residual published per cell as the `analytic.err` gauge.
  /// Only valid for DieCorrelation::kIndependentPaths.
  ssta::Backend backend = ssta::Backend::kMonteCarlo;
  /// Importance-sampler knobs for the analytic backend's shared-die
  /// deep-tail path (used by core::YieldAnalysis::tail_fail).
  ssta::IsleOptions isle;
};

/// Result of the structural-duplication sizing (one Table 1 cell).
struct DuplicationResult {
  int spares = 0;          ///< Required spare lanes (valid when feasible).
  bool feasible = false;   ///< False when > max_spares are needed.
  double area_overhead = 0.0;   ///< Fraction of PE area.
  double power_overhead = 0.0;  ///< Fraction of PE power.
  /// Convergence diagnostics of the sizing run: Kish effective sample
  /// size of the (possibly weighted) chip sample and the relative 95 %
  /// CI half-width of the sign-off delay at the chosen spare count.
  double ess = 0.0;
  double p99_rel_ci_halfwidth = 0.0;
};

/// Result of the voltage-margin search (one Table 2 cell).
struct VoltageMarginResult {
  double margin = 0.0;     ///< Required supply increase [V].
  bool feasible = false;   ///< False when margin exceeds the search cap.
  double power_overhead = 0.0;  ///< Fraction of PE power.
};

/// Result of the frequency-margining analysis (one Table 4 cell).
struct FrequencyMarginResult {
  double t_clk = 0.0;      ///< Designed (nominal-scaled) clock period [s].
  double t_va_clk = 0.0;   ///< Variation-aware clock period [s].
  double drop_pct = 0.0;   ///< Performance degradation [%].
};

/// One combined design choice (one Table 3 row).
struct CombinedChoice {
  int spares = 0;
  double margin = 0.0;          ///< [V].
  bool feasible = false;
  double power_overhead = 0.0;  ///< Fraction of PE power.
};

/// Architecture-level study of one technology node.
/// Thread-safe: the per-voltage sampler and sign-off caches use the
/// keyed caches from exec/cache.h, so the *_sweep methods fan grid points
/// out on the shared thread pool against one shared instance. Results are
/// deterministic for any worker count (common-random-numbers seed plus
/// substream scheduling).
class MitigationStudy {
 public:
  explicit MitigationStudy(const device::TechNode& node,
                           MitigationConfig config = {});

  const device::TechNode& node() const noexcept { return model_.node(); }
  const MitigationConfig& config() const noexcept { return config_; }
  const device::VariationModel& model() const noexcept { return model_; }

  /// Cached per-voltage sampler (built on first use).
  const arch::ChipDelaySampler& sampler(double vdd) const;

  /// Monte Carlo chip-delay sample at `vdd` with `spares` spare lanes.
  /// Always samples, regardless of the configured backend (callers that
  /// want the whole empirical distribution, e.g. figure benches, opt in
  /// explicitly).
  arch::ChipMcResult mc_chip(double vdd, int spares = 0) const;

  /// The closed-form evaluator when backend == kAnalytic, else nullptr.
  const ssta::AnalyticChipStudy* analytic() const noexcept {
    return analytic_ ? &*analytic_ : nullptr;
  }

  /// Sign-off (99 %) chip delay [s].
  double chip_delay_p99(double vdd, int spares = 0) const;

  /// Sign-off chip delay in FO4 units at `vdd` ("fo4chipd").
  double fo4_chip_delay_p99(double vdd, int spares = 0) const;

  /// Fig. 4: performance drop [%] of NTV operation vs nominal voltage,
  /// compared at the sign-off point of normalized (FO4-unit) delay.
  double performance_drop_pct(double vdd) const;

  /// Section 4.2 target: the absolute delay at `vdd` that matches the
  /// nominal-voltage normalized sign-off delay [s].
  double target_delay(double vdd) const;

  /// Table 1: fewest spares whose sign-off delay meets the nominal
  /// baseline, searched in [0, max_spares].
  DuplicationResult required_spares(double vdd, int max_spares = 128) const;

  /// Table 2 (and the margin half of Table 3): smallest supply increase
  /// such that the sign-off delay of a (width + spares) system meets
  /// target_delay(vdd). Search capped at `max_margin`.
  VoltageMarginResult required_voltage_margin(double vdd, int spares = 0,
                                              double max_margin = 0.1) const;

  /// Table 4: frequency-margining figures at `vdd`.
  FrequencyMarginResult frequency_margin(double vdd) const;

  /// Table 3 / Fig. 8: for each spare count, the margin completing it and
  /// the combined power overhead. Spare counts are explored as parallel
  /// tasks after the shared target is primed once.
  std::vector<CombinedChoice> explore_combined(
      double vdd, std::span<const int> spare_counts,
      double max_margin = 0.1) const;

  /// Whole-column sweeps: element i of each result is the corresponding
  /// single-point call at vdds[i]. The shared nominal-voltage baseline is
  /// computed once up front, then grid points fan out as tasks on the
  /// shared pool; results are byte-identical to the serial loop.
  std::vector<double> performance_drop_sweep(
      std::span<const double> vdds) const;
  std::vector<DuplicationResult> required_spares_sweep(
      std::span<const double> vdds, int max_spares = 128) const;
  std::vector<VoltageMarginResult> required_voltage_margin_sweep(
      std::span<const double> vdds, int spares = 0,
      double max_margin = 0.1) const;
  std::vector<FrequencyMarginResult> frequency_margin_sweep(
      std::span<const double> vdds) const;

 private:
  std::int64_t vkey(double vdd) const noexcept;
  /// FO4 unit at `vdd` without forcing a sampler build under the analytic
  /// backend (the sampler's grid construction is the cost the backend
  /// exists to avoid).
  double fo4_unit(double vdd) const;

  /// Shard plumbing (stats/shard.h, docs/SHARDING.md). Only the naive
  /// plan's statistics shard (the bit-stability contract); a worker
  /// under any other plan returns dummies and the merger recomputes
  /// locally. `shard_key` content-addresses one Monte Carlo cell so
  /// worker and merger agree on what a tape record means.
  std::string shard_cell_key(const char* kind, double vdd,
                             int detail) const;
  /// Worker side: condense the owned rows of one delay column into a
  /// tail sketch on the shard tape.
  void emit_p99_sketch(const std::string& key,
                       std::span<const double> delays) const;
  /// Merge side: reconstruct the sign-off percentile of one cell from
  /// the worker tapes; nullopt on any miss (caller recomputes).
  std::optional<double> merged_chip_delay_p99(const std::string& key) const;
  /// Merge side: reconstruct a whole required_spares cell (search, CI,
  /// overheads) from the per-alpha tail sketches on the tapes.
  std::optional<DuplicationResult> merged_required_spares(
      const std::string& key, double vdd, int max_spares,
      double baseline) const;

  device::VariationModel model_;
  MitigationConfig config_;
  std::optional<ssta::AnalyticChipStudy> analytic_;
  /// Sampler construction is serial (dist-cache lookup + scalars), so the
  /// build-once cache is safe; the p99 factory runs Monte Carlo on the
  /// pool, which mandates the race cache (see exec/cache.h).
  mutable exec::KeyedOnceCache<std::int64_t, arch::ChipDelaySampler>
      samplers_;
  mutable exec::KeyedRaceCache<std::pair<std::int64_t, int>, double>
      p99_cache_;
};

}  // namespace ntv::core
