// Parametric yield and speed binning.
//
// The duplication/margining solvers size a design for a fixed sign-off
// percentile; manufacturers think in the dual view — given a clock, what
// fraction of parts makes it (parametric yield), and how does the spare
// budget buy yield back? This module answers both from the same chip-
// delay Monte Carlo.
#pragma once

#include <span>
#include <vector>

#include "core/mitigation.h"
#include "ssta/isle.h"
#include "stats/ecdf.h"

namespace ntv::core {

/// One point of a yield curve.
struct YieldPoint {
  double t_clk = 0.0;  ///< Clock period [s].
  double yield = 0.0;  ///< Fraction of chips meeting it, in [0, 1].
};

/// Yield analysis of the N-wide SIMD datapath at one technology node.
/// Thread-safe: the ECDF cache uses exec::KeyedRaceCache (the factory
/// runs Monte Carlo on the shared pool), and the underlying
/// MitigationStudy caches are thread-safe too.
class YieldAnalysis {
 public:
  explicit YieldAnalysis(const device::TechNode& node,
                         MitigationConfig config = {});

  /// Fraction of manufactured chips whose (duplication-repaired) delay
  /// meets `t_clk` at supply `vdd`. Under the analytic backend this is
  /// the closed-form chip CDF (no Monte Carlo, no ECDF build).
  double yield(double vdd, double t_clk, int spares = 0) const;

  /// Deep-tail timing loss P(chip delay > t_clk), estimated with the
  /// backend-appropriate machinery:
  ///  * analytic + independent paths: the exact closed-form binomial
  ///    tail (ess/ci reported as zero — the estimate is deterministic);
  ///  * analytic + shared die: the ISLE importance sampler of
  ///    ssta/isle.h, which resolves tails far beyond ECDF reach and
  ///    reports its effective sample size and 95 % CI half-width;
  ///  * Monte Carlo backend: the empirical exceedance fraction with a
  ///    normal-approximation CI (resolution floor ~1/chip_samples).
  ssta::TailYieldEstimate tail_fail(double vdd, double t_clk,
                                    int spares = 0) const;

  /// Smallest clock period achieving `target_yield` (in (0, 1]).
  double t_clk_for_yield(double vdd, double target_yield,
                         int spares = 0) const;

  /// Yield curve over `points` clock periods spanning
  /// [t_lo, t_hi] inclusive.
  std::vector<YieldPoint> curve(double vdd, double t_lo, double t_hi,
                                int points, int spares = 0) const;

  /// Speed-binning summary: the fraction of parts falling into each bin
  /// delimited by ascending clock periods `bin_edges` (a part lands in
  /// the fastest bin it meets; parts meeting none are "scrap", returned
  /// as the extra last element).
  std::vector<double> bin_fractions(double vdd,
                                    std::span<const double> bin_edges,
                                    int spares = 0) const;

  const MitigationStudy& study() const noexcept { return study_; }

  /// Builds the chip-delay ECDF at each (vdd, spares) pair up front, one
  /// Monte Carlo run per pair as parallel pool tasks, so later queries
  /// are cache hits. Duplicate pairs are deduplicated by the cache.
  void prime(std::span<const double> vdds, std::span<const int> spares) const;

 private:
  const stats::Ecdf& ecdf(double vdd, int spares) const;

  /// What the caller asked for. The inner study is constructed with the
  /// backend demoted to Monte Carlo when the analytic closed form does
  /// not exist (shared-die correlation); tail_fail still honours the
  /// request there through the ISLE sampler.
  ssta::Backend requested_backend_ = ssta::Backend::kMonteCarlo;
  mutable MitigationStudy study_;
  mutable exec::KeyedRaceCache<std::pair<std::int64_t, int>, stats::Ecdf>
      ecdfs_;
};

}  // namespace ntv::core
