#include "stats/rng.h"

#include <cmath>

#include "simd/simd.h"

namespace ntv::stats {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() noexcept {
  std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Xoshiro256pp::Xoshiro256pp(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // An all-zero state would be a fixed point; SplitMix64 cannot produce four
  // consecutive zeros for any seed, so no extra guard is required.
}

Xoshiro256pp::result_type Xoshiro256pp::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

void Xoshiro256pp::jump() noexcept {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL,
      0xA9582618E03FC9AAULL, 0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (std::uint64_t{1} << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      next();
    }
  }
  s_ = {s0, s1, s2, s3};
}

double Xoshiro256pp::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Xoshiro256pp::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform();
}

double Xoshiro256pp::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u, v, s;
  do {
    u = 2.0 * uniform() - 1.0;
    v = 2.0 * uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * factor;
  has_cached_normal_ = true;
  return u * factor;
}

double Xoshiro256pp::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

Xoshiro256ppX4::Xoshiro256ppX4(std::uint64_t seed) noexcept {
  SplitMix64 mixer(seed);
  for (std::size_t lane = 0; lane < 4; ++lane) {
    SplitMix64 sm(mixer.next());
    for (std::size_t word = 0; word < 4; ++word) {
      state_[word * 4 + lane] = sm.next();
    }
  }
}

void Xoshiro256ppX4::fill_uniform(double* out, std::size_t n) noexcept {
  simd::kernels().fill_uniform4(state_.data(), out, n);
}

std::uint64_t Xoshiro256pp::bounded(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's multiply-shift rejection method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace ntv::stats
