// Bootstrap confidence intervals for Monte Carlo estimates.
//
// The paper's sign-off quantity is a 99th percentile estimated from
// 10,000 samples — a statistic with non-trivial sampling error. The
// bootstrap quantifies it without distributional assumptions, so the
// benches can report how much of a paper-vs-measured gap is just Monte
// Carlo noise.
#pragma once

#include <cstdint>
#include <functional>
#include <span>

namespace ntv::stats {

/// A two-sided confidence interval.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  ///< Point estimate on the original sample.
};

/// Percentile-bootstrap CI for an arbitrary statistic of the sample.
/// `confidence` in (0,1), e.g. 0.95. `resamples` bootstrap replicates.
ConfidenceInterval bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    double confidence = 0.95, int resamples = 1000,
    std::uint64_t seed = 0xB007);

/// Convenience: CI of the p-th percentile (the sign-off statistic).
ConfidenceInterval bootstrap_percentile_ci(std::span<const double> sample,
                                           double p,
                                           double confidence = 0.95,
                                           int resamples = 1000,
                                           std::uint64_t seed = 0xB007);

}  // namespace ntv::stats
