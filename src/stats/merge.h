// Mergeable sample summaries with a bit-stable aggregation contract.
//
// A sharded Monte Carlo run (stats/shard.h) never ships raw rows: each
// worker condenses its owned substream blocks into summaries that are
// small, mergeable, and — for everything the default (naive) plan's
// reports derive from them — reproduce the unsharded computation BIT
// FOR BIT in any merge grouping order:
//
//  * MomentSketch — Welford moment summaries keyed by substream block.
//    Merging is a disjoint map union (trivially order-invariant);
//    `finalize()` folds the per-block leaves in ascending block order
//    with the Chan et al. pairwise update, so the folded Summary is a
//    pure function of the leaf SET, not of how shards were grouped.
//  * TailSketch — the exact largest-K order statistics of a column plus
//    its total count. The union of per-shard top-K multisets contains
//    the global top-K (any globally top-K value is top-K within its own
//    shard), so upper-tail percentiles computed from the merged sketch
//    replicate stats::percentile on the full column exactly, using the
//    same type-7 interpolation arithmetic.
//  * merge_histograms / merge_ecdfs — integer bin counts and sorted
//    multiset unions; both are exact and commutative.
//
// Limits of the contract (docs/SHARDING.md): weighted sampling plans
// (importance/stratified MIS ladders) interleave self-normalized weight
// sums whose floating-point association depends on the split, so only
// the naive plan's reports are bit-stable under sharding; non-naive
// plans degrade to merge-side local computation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "stats/descriptive.h"
#include "stats/ecdf.h"
#include "stats/histogram.h"
#include "stats/variance_reduction.h"

namespace ntv::stats {

/// Per-block Welford summaries with a canonical, grouping-independent
/// fold. Workers add whole substream blocks; merging shards is a
/// disjoint union of block keys.
class MomentSketch {
 public:
  /// Summarizes one substream block (key = block index). Re-adding a
  /// block that is already present is a contract violation (each block
  /// has exactly one owner) and is ignored.
  void add_block(std::size_t block, std::span<const double> values);

  /// Disjoint union of block summaries. Blocks present on both sides
  /// (ownership violation) keep this sketch's leaf.
  void merge(const MomentSketch& other);

  /// Folds the leaves in ascending block order with Summary::merge
  /// (Chan et al.). The result depends only on the leaf set, never on
  /// merge grouping — the bit-stability contract of the sharded mean /
  /// variance / 3σ/μ numbers.
  Summary finalize() const;

  std::size_t blocks() const noexcept { return leaves_.size(); }

  /// Serialization for the shard tape: 8 doubles per leaf
  /// (block, n, mean, m2, m3, m4, min, max) — see merge.cc.
  std::vector<double> serialize() const;
  static std::optional<MomentSketch> deserialize(
      std::span<const double> payload);

 private:
  std::map<std::size_t, Summary> leaves_;
};

/// Exact largest-K order statistics of one column: `values` holds the
/// K largest samples in ascending order, `n` the full column size.
/// `values.size() == min(keep, owned)` on a worker; after merging, the
/// merged sketch is trimmed back to min(keep, n).
struct TailSketch {
  std::uint64_t n = 0;          ///< Total column size (all shards).
  std::uint64_t owned = 0;      ///< Samples this sketch actually saw.
  std::vector<double> values;   ///< Largest-K, ascending.
};

/// How many upper order statistics a worker must keep so every
/// percentile probe the sign-off search makes — the estimate at `p` and
/// the CI probes at 100·(p/100 ± z·se) with se = sqrt(p(1-p)/n) — stays
/// inside the kept tail. Identical on worker and merge sides by
/// construction (pure function of (n, p, z)).
std::size_t tail_keep(std::size_t n, double p,
                      double z = 1.959963984540054);

/// Builds the sketch of one column from the subset of samples this
/// worker owns. `keep` bounds values.size(); `n` is the FULL column
/// size across all shards.
TailSketch tail_sketch(std::span<const double> owned_values, std::uint64_t n,
                       std::size_t keep);

/// Multiset union of shard sketches, trimmed to the largest
/// min(keep, n) values. Order-invariant: the result depends only on
/// the union of the input multisets. Returns nullopt when the shards
/// disagree on `n` or their `owned` counts do not sum to `n` (a missing
/// or duplicated shard — merging would silently produce wrong numbers).
std::optional<TailSketch> merge_tails(std::span<const TailSketch> shards,
                                      std::size_t keep);

/// The p-th percentile of the full (virtual) sorted column, computed
/// from its tail sketch with the same type-7 interpolation arithmetic
/// as stats::percentile_sorted — bit-identical whenever the probed rank
/// lands inside the kept tail. Returns nullopt when it does not (the
/// caller then falls back to local computation).
std::optional<double> percentile_from_tail(const TailSketch& tail, double p);

/// Unweighted stats::weighted_percentile_ci replicated on a tail
/// sketch: estimate at p, bounds at the ±z·se probe levels, ess = n.
/// Bit-identical to the full-column computation when every probed rank
/// is inside the tail; nullopt otherwise.
std::optional<QuantileCi> quantile_ci_from_tail(
    const TailSketch& tail, double p, double z = 1.959963984540054);

/// Tape serialization of a set of per-column tail sketches sharing one
/// (n, owned): header {n, owned, n_columns, len} then n_columns runs of
/// `len` ascending doubles (len = min(keep, owned), identical across
/// columns). Used by core/mitigation.cc for the per-alpha delay columns.
std::vector<double> serialize_tails(std::span<const TailSketch> columns);
std::vector<TailSketch> deserialize_tails(std::span<const double> payload);

/// Exact histogram merge: identical (lo, hi, bins) geometry required
/// (returns nullopt otherwise); counts add, which is order-invariant.
std::optional<Histogram> merge_histograms(std::span<const Histogram> parts);

/// Exact ECDF merge: the sorted multiset union of the parts' samples —
/// the same sorted vector std::sort would produce on the concatenated
/// raw data, regardless of how the sample was split.
Ecdf merge_ecdfs(std::span<const Ecdf> parts);

}  // namespace ntv::stats
