#include "stats/fft.h"

#include <cmath>
#include <stdexcept>

namespace ntv::stats {

void fft(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  if (n == 0 || (n & (n - 1)) != 0)
    throw std::invalid_argument("fft: size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle = (inverse ? 2.0 : -2.0) * M_PI / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = data[i + k];
        const std::complex<double> v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }

  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

std::vector<double> pmf_power(const std::vector<double>& pmf, int power) {
  if (pmf.empty() || power < 1)
    throw std::invalid_argument("pmf_power: need non-empty pmf, power >= 1");
  if (power == 1) return pmf;

  const std::size_t out_size = (pmf.size() - 1) * static_cast<std::size_t>(power) + 1;
  const std::size_t n = next_pow2(out_size);

  std::vector<std::complex<double>> freq(n);
  for (std::size_t i = 0; i < pmf.size(); ++i) freq[i] = pmf[i];
  fft(freq, /*inverse=*/false);
  for (auto& x : freq) x = std::pow(x, power);
  fft(freq, /*inverse=*/true);

  std::vector<double> out(out_size);
  double sum = 0.0;
  for (std::size_t i = 0; i < out_size; ++i) {
    const double v = freq[i].real();
    out[i] = v > 0.0 ? v : 0.0;  // Clamp FFT round-off.
    sum += out[i];
  }
  if (sum > 0.0) {
    for (auto& v : out) v /= sum;
  }
  return out;
}

}  // namespace ntv::stats
