#include "stats/normality.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.h"
#include "stats/normal.h"

namespace ntv::stats {

AndersonDarlingResult anderson_darling_normal(
    std::span<const double> data) {
  if (data.size() < 8)
    throw std::invalid_argument(
        "anderson_darling_normal: need at least 8 observations");

  const Summary summary(data);
  const double mu = summary.mean();
  const double sigma = summary.stddev();
  if (sigma <= 0.0)
    throw std::invalid_argument(
        "anderson_darling_normal: degenerate sample");

  std::vector<double> z(data.begin(), data.end());
  std::sort(z.begin(), z.end());
  const auto n = static_cast<double>(z.size());

  double a2 = 0.0;
  for (std::size_t i = 0; i < z.size(); ++i) {
    // Clamp the CDF away from 0/1 so the logs stay finite.
    const double f = std::clamp(
        normal_cdf((z[i] - mu) / sigma), 1e-300, 1.0 - 1e-16);
    const double f_rev = std::clamp(
        normal_cdf((z[z.size() - 1 - i] - mu) / sigma), 1e-300,
        1.0 - 1e-16);
    const double weight = 2.0 * static_cast<double>(i) + 1.0;
    a2 += weight * (std::log(f) + std::log1p(-f_rev));
  }
  a2 = -n - a2 / n;

  // Stephens' correction for estimated parameters.
  const double a2_star = a2 * (1.0 + 0.75 / n + 2.25 / (n * n));

  AndersonDarlingResult result;
  result.a2 = a2_star;
  result.normal_at_5pct = a2_star < 0.752;
  result.normal_at_1pct = a2_star < 1.035;
  return result;
}

}  // namespace ntv::stats
