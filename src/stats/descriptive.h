// Descriptive statistics over samples of delays (or any scalar data).
//
// The paper's central metric is the relative delay spread 3σ/μ, reported in
// percent; `Summary::three_sigma_over_mu_pct()` computes exactly that.
#pragma once

#include <cstddef>
#include <span>

namespace ntv::stats {

/// One-pass summary of a sample: moments, extrema and derived spread
/// metrics. Uses Welford's algorithm so it is numerically stable even for
/// tightly clustered nanosecond-scale delays.
class Summary {
 public:
  Summary() = default;

  /// Builds a summary from an existing sample.
  explicit Summary(std::span<const double> data);

  /// Rebuilds a summary from raw central moments (the exact private
  /// state): used by the shard merge layer (stats/merge.h) to fold
  /// per-block leaves back into a Summary. `n == 0` returns a default
  /// summary regardless of the other arguments.
  static Summary from_moments(std::size_t n, double mean, double m2,
                              double m3, double m4, double min,
                              double max) noexcept;

  /// Adds one observation.
  void add(double x) noexcept;

  /// Merges another summary (parallel reduction; Chan et al. update).
  void merge(const Summary& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }

  /// Raw central moment sums (Σ(x−μ)^k); exposed with `from_moments` so
  /// the shard merge layer can serialize summaries losslessly.
  double m2() const noexcept { return m2_; }
  double m3() const noexcept { return m3_; }
  double m4() const noexcept { return m4_; }

  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const noexcept;
  double stddev() const noexcept;

  /// Minimum / maximum observed value; undefined when count()==0.
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

  /// The paper's spread metric: 3σ/μ in percent. Returns 0 when the mean
  /// is zero (no meaningful relative spread).
  double three_sigma_over_mu_pct() const noexcept;

  /// Coefficient of variation σ/μ (unitless).
  double cv() const noexcept;

  /// Sample skewness (g1); 0 for fewer than three observations.
  double skewness() const noexcept;

  /// Excess kurtosis (g2); 0 for fewer than four observations.
  double excess_kurtosis() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Arithmetic mean; 0 for an empty sample.
double mean(std::span<const double> data) noexcept;

/// Unbiased sample standard deviation; 0 for fewer than two observations.
double stddev(std::span<const double> data) noexcept;

/// 3σ/μ in percent — the paper's delay-variation metric.
double three_sigma_over_mu_pct(std::span<const double> data) noexcept;

}  // namespace ntv::stats
