// Deterministic, high-quality pseudo-random number generation.
//
// All Monte Carlo experiments in this repository must be reproducible across
// platforms and standard-library implementations, so we ship our own
// generator (xoshiro256++) and our own variate transforms instead of relying
// on std::normal_distribution, whose output is implementation-defined.
#pragma once

#include <array>
#include <cstdint>

namespace ntv::stats {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Never use it as the main generator; it is only a seeder.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Returns the next 64-bit value of the sequence.
  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
///
/// Supports `jump()` (advance by 2^128 steps) so that independent parallel
/// substreams can be derived from one seed, which the threaded Monte Carlo
/// runner uses to keep results independent of the thread count.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Xoshiro256pp(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Returns the next 64-bit value.
  result_type next() noexcept;

  /// UniformRandomBitGenerator interface.
  result_type operator()() noexcept { return next(); }
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Advances the state by 2^128 steps; equivalent to discarding 2^128
  /// outputs. Used to split one seed into non-overlapping substreams.
  void jump() noexcept;

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal variate via the Marsaglia polar method (exact,
  /// platform-independent; caches the second variate of each pair).
  double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Four xoshiro256++ generators in lockstep, seeded from one 64-bit seed
/// the same way four consecutive Xoshiro256pp instances would be: lane l
/// is Xoshiro256pp(mixer.next()'s l-th draw). Generates uniforms four at
/// a time through the SIMD kernel layer in interleaved order
/// out[4*t + lane], which is the SoA layout the block samplers consume.
class Xoshiro256ppX4 {
 public:
  /// Seeds lane l from the l-th draw of SplitMix64(seed), then expands
  /// each lane's 256-bit state via SplitMix64 exactly like the
  /// Xoshiro256pp constructor; lane 0 therefore equals
  /// Xoshiro256pp(SplitMix64(seed).next()).
  explicit Xoshiro256ppX4(std::uint64_t seed) noexcept;

  /// Fills out[0..n) with uniforms in [0,1), n a multiple of 4, in
  /// lane-interleaved order: out[4*t + l] is lane l's t-th draw.
  void fill_uniform(double* out, std::size_t n) noexcept;

 private:
  // state_[word*4 + lane] — the layout the fill_uniform4 kernel expects.
  std::array<std::uint64_t, 16> state_{};
};

}  // namespace ntv::stats
