// Deterministic, high-quality pseudo-random number generation.
//
// All Monte Carlo experiments in this repository must be reproducible across
// platforms and standard-library implementations, so we ship our own
// generator (xoshiro256++) and our own variate transforms instead of relying
// on std::normal_distribution, whose output is implementation-defined.
#pragma once

#include <array>
#include <cstdint>

namespace ntv::stats {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Never use it as the main generator; it is only a seeder.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Returns the next 64-bit value of the sequence.
  std::uint64_t next() noexcept;

 private:
  std::uint64_t state_;
};

/// xoshiro256++ by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
///
/// Supports `jump()` (advance by 2^128 steps) so that independent parallel
/// substreams can be derived from one seed, which the threaded Monte Carlo
/// runner uses to keep results independent of the thread count.
class Xoshiro256pp {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from one 64-bit seed via SplitMix64.
  explicit Xoshiro256pp(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept;

  /// Returns the next 64-bit value.
  result_type next() noexcept;

  /// UniformRandomBitGenerator interface.
  result_type operator()() noexcept { return next(); }
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~result_type{0}; }

  /// Advances the state by 2^128 steps; equivalent to discarding 2^128
  /// outputs. Used to split one seed into non-overlapping substreams.
  void jump() noexcept;

  /// Uniform double in [0, 1) with 53 random mantissa bits.
  double uniform() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Standard normal variate via the Marsaglia polar method (exact,
  /// platform-independent; caches the second variate of each pair).
  double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double normal(double mean, double stddev) noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t bounded(std::uint64_t bound) noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace ntv::stats
