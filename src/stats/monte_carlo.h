// Pooled Monte Carlo sample generation with reproducible substreams.
//
// Every experiment in the paper is a Monte Carlo sweep (1,000 samples for
// circuit-level figures, 10,000 for chip-level figures). The runner splits
// one seed into per-block xoshiro substreams and executes the blocks on
// the shared exec::ThreadPool, so the generated sample set is independent
// of the machine's core count AND no per-call threads are spawned.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "stats/rng.h"

namespace ntv::stats {

/// Configuration for a Monte Carlo run.
struct MonteCarloOptions {
  std::uint64_t seed = 0xD1E7C0DE5EED;  ///< Base seed of the run.
  /// 1 = run serially inline (never touches the pool); any other value
  /// (including the default 0) = run the blocks on the shared global
  /// exec::ThreadPool, whose size is fixed at startup (--threads /
  /// $NTV_THREADS / hardware_concurrency). Results are byte-identical
  /// either way.
  int threads = 0;
};

/// Draws `n` samples of `sampler(rng)` and returns them in deterministic
/// order (sample i is always produced by substream i/chunk, offset i%chunk,
/// regardless of thread count).
std::vector<double> monte_carlo(
    std::size_t n, const std::function<double(Xoshiro256pp&)>& sampler,
    const MonteCarloOptions& opt = {});

/// Vector-valued variant: each draw produces `width` doubles (e.g. the
/// delays of all lanes of one chip instance). Results are returned
/// row-major: sample i occupies [i*width, (i+1)*width).
std::vector<double> monte_carlo_rows(
    std::size_t n, std::size_t width,
    const std::function<void(Xoshiro256pp&, std::size_t /*row*/,
                             double* /*out*/)>& sampler,
    const MonteCarloOptions& opt = {});

/// Block-level variant for batched sampling kernels: the sampler receives
/// one whole substream block (rows [lo, hi), `out` pointing at row lo's
/// storage) and fills all of it with ONE call. A sampler that draws its
/// random variates in the same order a row-at-a-time loop would — e.g.
/// all per-row RNG draws first, then a batched inverse-CDF pass over a
/// scratch buffer — produces byte-identical output to monte_carlo_rows
/// while amortizing per-sample dispatch over the block. Blocks are the
/// determinism unit (fixed size, one substream each), so results stay
/// independent of the worker count.
std::vector<double> monte_carlo_blocks(
    std::size_t n, std::size_t width,
    const std::function<void(Xoshiro256pp&, std::size_t /*lo*/,
                             std::size_t /*hi*/, double* /*out*/)>& sampler,
    const MonteCarloOptions& opt = {});

/// In-place variant of monte_carlo_blocks: fills the caller's buffer
/// (at least n*width doubles) instead of allocating. The buffer may be
/// UNINITIALIZED — every row is written in an unsharded run, and a shard
/// worker (stats/shard.h) leaves exactly the rows it does not own
/// untouched, which by contract are never read. Callers on the sharded
/// path should prefer this over the vector variant: value-initializing
/// a multi-hundred-MB row store page-faults the whole allocation in
/// every worker, which is most of what --shards exists to divide.
void monte_carlo_blocks_into(
    double* out, std::size_t n, std::size_t width,
    const std::function<void(Xoshiro256pp&, std::size_t /*lo*/,
                             std::size_t /*hi*/, double* /*out*/)>& sampler,
    const MonteCarloOptions& opt = {});

/// In-place variant of monte_carlo_rows (same buffer contract as
/// monte_carlo_blocks_into).
void monte_carlo_rows_into(
    double* out, std::size_t n, std::size_t width,
    const std::function<void(Xoshiro256pp&, std::size_t /*row*/,
                             double* /*out*/)>& sampler,
    const MonteCarloOptions& opt = {});

/// Thread count a run with MonteCarloOptions{.threads = requested} would
/// use. Delegates to exec::resolved_worker_threads (requested > 0 wins,
/// else $NTV_THREADS, else hardware_concurrency — the old [1, 16] clamp is
/// gone). Exposed so run manifests can record the resolved worker count.
int resolved_thread_count(int requested = 0);

/// Returns the substream RNG for block `index` under the given seed.
/// Exposed so single-shot callers can reproduce exactly what the threaded
/// runner would generate.
Xoshiro256pp substream(std::uint64_t seed, std::size_t index);

/// Block size of monte_carlo_blocks: block b covers rows
/// [b*kMonteCarloBlock, (b+1)*kMonteCarloBlock). Exposed so SoA block
/// samplers can size per-block scratch buffers once.
inline constexpr std::size_t kMonteCarloBlock = 64;

/// Four-lane SIMD substream for block `index`: lane 0 is seeded exactly
/// like substream(seed, index) (the same SplitMix64 mixer, first draw),
/// lanes 1-3 from the mixer's next three draws. Block samplers that fill
/// their uniforms through this generator consume a DIFFERENT stream than
/// a row-at-a-time substream() loop — the wide layout is part of the
/// sampling contract (fixed per block, so results remain independent of
/// thread count and dispatch backend).
Xoshiro256ppX4 substream4(std::uint64_t seed, std::size_t index);

}  // namespace ntv::stats
