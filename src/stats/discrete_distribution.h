// A probability distribution discretized on a uniform grid.
//
// Delay distributions of gates and gate chains are represented this way:
// built once (numerically exact up to grid resolution), then queried for
// quantiles, CDF values and moments in O(1).
//
// Quantile queries are the hottest operation in the repository: every lane
// of every Monte Carlo chip draw is one inverse-CDF evaluation. A
// guide table (Chen-style) built alongside the CDF maps u-buckets to CDF
// index ranges, so quantile(u) is an O(1) bucket lookup plus a short
// bounded scan instead of a binary search over a multi-thousand-entry
// CDF — and it lands on exactly the same index lower_bound would, so
// results are byte-identical to the pre-guide implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace ntv::simd {
struct QuantileGrid;
}

namespace ntv::stats {

/// Immutable discretized distribution over [lo, lo + (bins-1)*step].
/// pmf[i] is the probability mass at grid point lo + i*step.
class GridDistribution {
 public:
  /// Builds from a pmf; normalizes mass to one.
  /// Precondition: pmf non-empty with non-negative entries and positive sum.
  GridDistribution(double lo, double step, std::vector<double> pmf);

  double lo() const noexcept { return lo_; }
  double step() const noexcept { return step_; }
  std::size_t size() const noexcept { return pmf_.size(); }
  const std::vector<double>& pmf() const noexcept { return pmf_; }

  double mean() const noexcept { return mean_; }
  double variance() const noexcept { return var_; }
  double stddev() const noexcept;
  double skewness() const noexcept { return skew_; }

  /// 3*stddev/mean in percent — the paper's variation metric.
  double three_sigma_over_mu_pct() const noexcept;

  /// P(X <= x), piecewise-linear between grid points.
  double cdf(double x) const noexcept;

  /// Inverse CDF with linear interpolation; u clamped to (0,1).
  double quantile(double u) const noexcept;

  /// Quantile of the maximum of k i.i.d. copies of this variable at
  /// probability u:  Q_max(u) = quantile(u^(1/k)).
  double max_quantile(double u, int k) const;

  /// Batched inverse CDF: out[i] = quantile(u[i]). Byte-identical to the
  /// per-call API; written as a flat loop over raw pointers so the
  /// compiler can keep everything in registers. Bumps the
  /// "stats.quantile.guide_hits"/"stats.quantile.scans" counters once per
  /// call (never per sample). Precondition: u.size() == out.size().
  void quantile_batch(std::span<const double> u, std::span<double> out) const;

  /// Batched max-of-k quantile: out[i] = max_quantile(u[i], k), with the
  /// 1/k exponent hoisted out of the loop. Byte-identical to the per-call
  /// API. Precondition: u.size() == out.size(), k >= 1.
  void max_quantile_batch(std::span<const double> u, int k,
                          std::span<double> out) const;

  /// Distribution of the sum of `n` i.i.d. copies (convolution power).
  GridDistribution sum_of_iid(int n) const;

  /// Distribution of the sum of two independent variables (FFT
  /// convolution). Both operands must share the same grid step.
  static GridDistribution convolve(const GridDistribution& a,
                                   const GridDistribution& b);

  /// Distribution of the maximum of k i.i.d. copies: CDF = F^k.
  /// Exact order-statistics result; no sampling.
  GridDistribution max_of_iid(int k) const;

  /// Distribution of the r-th smallest (1-based) of n i.i.d. copies:
  /// CDF(x) = P(at least r of n are <= x) = I_{F(x)}(r, n-r+1).
  /// r == n gives max_of_iid(n); r == 1 the minimum. This is the delay
  /// law of a spare-repaired chip: keeping the fastest `width` of
  /// `width+alpha` lanes is the order statistic r = width.
  GridDistribution order_statistic(int r, int n) const;

  /// Distribution of max(X, Y) for independent X, Y on the same grid
  /// step: CDF = F_X * F_Y (grids are unioned).
  static GridDistribution max_of_independent(const GridDistribution& a,
                                             const GridDistribution& b);

 private:
  /// Index of the first CDF entry >= u — the element std::lower_bound
  /// would return — found via the guide table in O(1) expected time.
  /// `scans` accumulates the number of forward probe steps taken.
  std::size_t quantile_index(double u, std::size_t& scans) const noexcept;

  /// Shared scalar kernel behind quantile()/quantile_batch().
  double quantile_impl(double u, std::size_t& scans) const noexcept;

  /// Raw view over the CDF + guide tables for the SIMD kernel layer.
  simd::QuantileGrid grid_view() const noexcept;

  /// Builds the u-bucket -> CDF-index guide table (called once, from the
  /// constructor, right after the CDF is finalized).
  void build_guide();

  double lo_;
  double step_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= lo + i*step)
  /// guide_[j] = first index i with cdf_[i] >= j / buckets, for
  /// j in [0, buckets]; quantile(u) starts its bounded scan at
  /// guide_[floor(u * buckets)]. Immutable after construction, so
  /// concurrent readers share it freely.
  std::vector<std::uint32_t> guide_;
  double guide_buckets_ = 0.0;  ///< Bucket count as a double (hot-path mul).
  double mean_ = 0.0;
  double var_ = 0.0;
  double skew_ = 0.0;
};

/// P(Binomial(n, p) >= r), accurate in both tails (lgamma leading term
/// plus a stable term recurrence, reflected when p sits above the mode).
/// This is the k-of-N sparing law shared by GridDistribution::
/// order_statistic and the ssta analytic backend's pointwise chip CDF.
double binomial_sf(int r, int n, double p);

}  // namespace ntv::stats
