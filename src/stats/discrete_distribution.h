// A probability distribution discretized on a uniform grid.
//
// Delay distributions of gates and gate chains are represented this way:
// built once (numerically exact up to grid resolution), then queried for
// quantiles, CDF values and moments in O(log n) / O(1).
#pragma once

#include <cstddef>
#include <vector>

namespace ntv::stats {

/// Immutable discretized distribution over [lo, lo + (bins-1)*step].
/// pmf[i] is the probability mass at grid point lo + i*step.
class GridDistribution {
 public:
  /// Builds from a pmf; normalizes mass to one.
  /// Precondition: pmf non-empty with non-negative entries and positive sum.
  GridDistribution(double lo, double step, std::vector<double> pmf);

  double lo() const noexcept { return lo_; }
  double step() const noexcept { return step_; }
  std::size_t size() const noexcept { return pmf_.size(); }
  const std::vector<double>& pmf() const noexcept { return pmf_; }

  double mean() const noexcept { return mean_; }
  double variance() const noexcept { return var_; }
  double stddev() const noexcept;
  double skewness() const noexcept { return skew_; }

  /// 3*stddev/mean in percent — the paper's variation metric.
  double three_sigma_over_mu_pct() const noexcept;

  /// P(X <= x), piecewise-linear between grid points.
  double cdf(double x) const noexcept;

  /// Inverse CDF with linear interpolation; u clamped to (0,1).
  double quantile(double u) const noexcept;

  /// Quantile of the maximum of k i.i.d. copies of this variable at
  /// probability u:  Q_max(u) = quantile(u^(1/k)).
  double max_quantile(double u, int k) const;

  /// Distribution of the sum of `n` i.i.d. copies (convolution power).
  GridDistribution sum_of_iid(int n) const;

  /// Distribution of the sum of two independent variables (FFT
  /// convolution). Both operands must share the same grid step.
  static GridDistribution convolve(const GridDistribution& a,
                                   const GridDistribution& b);

  /// Distribution of the maximum of k i.i.d. copies: CDF = F^k.
  /// Exact order-statistics result; no sampling.
  GridDistribution max_of_iid(int k) const;

  /// Distribution of the r-th smallest (1-based) of n i.i.d. copies:
  /// CDF(x) = P(at least r of n are <= x) = I_{F(x)}(r, n-r+1).
  /// r == n gives max_of_iid(n); r == 1 the minimum. This is the delay
  /// law of a spare-repaired chip: keeping the fastest `width` of
  /// `width+alpha` lanes is the order statistic r = width.
  GridDistribution order_statistic(int r, int n) const;

  /// Distribution of max(X, Y) for independent X, Y on the same grid
  /// step: CDF = F_X * F_Y (grids are unioned).
  static GridDistribution max_of_independent(const GridDistribution& a,
                                             const GridDistribution& b);

 private:
  double lo_;
  double step_;
  std::vector<double> pmf_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= lo + i*step)
  double mean_ = 0.0;
  double var_ = 0.0;
  double skew_ = 0.0;
};

}  // namespace ntv::stats
