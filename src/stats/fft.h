// Minimal iterative radix-2 complex FFT and pmf convolution powers.
//
// Used to build the exact delay distribution of an N-stage gate chain: the
// chain pmf is the gate pmf convolved with itself N times, computed as a
// pointwise N-th power in the frequency domain.
#pragma once

#include <complex>
#include <vector>

namespace ntv::stats {

/// In-place iterative radix-2 FFT. `data.size()` must be a power of two
/// (throws std::invalid_argument otherwise). `inverse` selects the inverse
/// transform (including the 1/N normalization).
void fft(std::vector<std::complex<double>>& data, bool inverse);

/// Returns the smallest power of two >= n (n >= 1).
std::size_t next_pow2(std::size_t n);

/// Returns pmf convolved with itself `power` times (the distribution of a
/// sum of `power` i.i.d. variables whose pmf is given on a uniform grid).
/// The result has size (pmf.size()-1)*power + 1 and is renormalized to sum
/// to one; tiny negative FFT round-off values are clamped to zero.
/// Precondition: power >= 1 and pmf non-empty.
std::vector<double> pmf_power(const std::vector<double>& pmf, int power);

}  // namespace ntv::stats
