// Variance-reduced sampling strategies for the Monte Carlo pipeline.
//
// Every estimator the paper reports — chain-delay moments (Fig. 2), the
// 99 % chip-delay sign-off (Tables 1-4), spare-coverage probabilities
// (Fig. 12) — is a functional of uniform draws pushed through inverse
// CDFs. A SamplingPlan changes HOW those uniforms are generated while
// keeping the transform untouched, so one opt-in layer accelerates every
// workload:
//
//  * naive       — u ~ U(0,1) i.i.d. The default; byte-identical to the
//                  historical RNG stream (same draws, same order).
//  * stratified  — the primary dimension of row i is drawn from stratum
//                  i of n equi-probable strata: u = (i + v) / n. Exact
//                  (every stratum has probability 1/n and is sampled
//                  once), unbiased for means AND for the empirical CDF,
//                  and never worse than naive for monotone integrands.
//  * importance  — a row-level defensive mixture: a fixed 1-w fraction
//                  of rows keeps all dimensions U(0,1) (exactly the
//                  naive draw); the rest are split across a ladder of
//                  piecewise-constant tail tilts, one rung per knot c_k,
//                  each boosting the probability of its slow piece
//                  [c_k, 1). The exact likelihood ratio against the
//                  mixture is bounded by 1/(1-w) AND depends on the row
//                  only through its slow-draw counts — the statistic the
//                  tail events are made of — which is what keeps
//                  importance sampling effective (not just safe) in
//                  130-260-dimensional chip rows (docs/SAMPLING.md).
//  * qmc         — scrambled Sobol points (digital-shift scramble, one
//                  shift per dimension derived from the run seed);
//                  dimensions beyond kSobolDims fall back to the
//                  pseudorandom stream (standard hybrid padding). Best
//                  for smooth low-dimensional integrands (mean chain
//                  delay); quantile estimates are consistent but not
//                  exactly unbiased at finite n.
//
// Validity and the estimator math are derived in docs/SAMPLING.md. The
// weighted-sample helpers (self-normalized percentile, effective sample
// size, distribution-free quantile CIs) live here too, so workloads can
// report convergence diagnostics alongside their estimates.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "stats/monte_carlo.h"
#include "stats/rng.h"

namespace ntv::stats {

/// How a Monte Carlo run draws its uniforms.
enum class SamplingStrategy { kNaive, kStratified, kImportance, kQmc };

/// "naive" / "stratified" / "importance" / "qmc".
std::string_view to_string(SamplingStrategy strategy) noexcept;

/// Inverse of to_string; std::nullopt on unknown names.
std::optional<SamplingStrategy> parse_strategy(std::string_view name) noexcept;

/// An opt-in sampling strategy plus its tuning knobs. The default is the
/// naive plan, which reproduces the historical RNG stream byte for byte.
struct SamplingPlan {
  SamplingStrategy strategy = SamplingStrategy::kNaive;

  /// Aggressiveness of the importance tilt, as a z-score: each ladder
  /// rung boosts the per-dimension probability of its slow piece
  /// [c_k, 1) so the row's expected slow-draw count above c_k shifts by
  /// tilt_power standard deviations of its naive binomial distribution
  /// (the boost factor is derived from the row dimension at draw time).
  /// The default aims each rung at the ~99th percentile of its count —
  /// the exact event the paper's sign-off quantiles are made of.
  double tilt_power = 2.33;

  /// Total probability that a row is tilted at all (split equally across
  /// the ladder rungs). The likelihood ratio of every row is bounded by
  /// 1/(1 - tilt_weight), so the weighted estimators cannot degenerate
  /// no matter how high-dimensional the row is.
  double tilt_weight = 0.5;

  /// Center knot of the tilt ladder: rung knots c_k have tail
  /// probabilities 1-c_k geometrically spaced around 1-tilt_knot (from
  /// 6x down to 0.3x), and draws stay uniform within each piece. The
  /// spread covers the sweep's decision band — the lane quantile that
  /// decides the p99 sign-off moves from ~0.70 at large spare counts to
  /// ~0.997 at small ones (see plan_row_uniforms).
  double tilt_knot = 0.95;

  /// Number of rungs in the importance tilt ladder.
  static constexpr int kTiltLadder = 4;

  bool is_naive() const noexcept {
    return strategy == SamplingStrategy::kNaive;
  }
  /// True when rows carry non-unit likelihood-ratio weights.
  bool is_weighted() const noexcept {
    return strategy == SamplingStrategy::kImportance;
  }
};

/// Scrambled Sobol sequence with random-access indexing (point i is
/// computable without generating points 0..i-1, so parallel Monte Carlo
/// blocks stay deterministic for any worker count). The scramble is a
/// per-dimension digital shift (XOR of a seed-derived 32-bit mask, i.e.
/// a base-2 Cranley-Patterson rotation): it preserves every base-2
/// stratification property of the raw sequence and makes the point set
/// an unbiased estimator family for means.
class ScrambledSobol {
 public:
  /// Dimensions with true Sobol direction numbers; higher dimensions of
  /// a point fall back to pseudorandom padding at the call site.
  static constexpr int kDims = 12;

  explicit ScrambledSobol(std::uint64_t seed);

  /// Coordinate `dim` (in [0, kDims)) of point `index`, in [0, 1).
  double point(std::uint64_t index, int dim) const noexcept;

 private:
  std::uint32_t direction_[kDims][32];  ///< V_{dim,bit}, bit 0 = MSB-most.
  std::uint32_t shift_[kDims];          ///< Digital-shift scramble masks.
};

/// Fills `u` with sample `row`'s uniform draws under `plan` and returns
/// the row's likelihood-ratio weight (1.0 for every unweighted plan).
///
/// Contract for byte-identity of the default path: the naive plan makes
/// exactly u.size() rng.uniform() calls, in order — the same stream a
/// hand-written draw loop would consume. The stratified and importance
/// plans also make exactly u.size() uniform() calls (the importance
/// mixture component is a deterministic function of the row index, not a
/// random draw); qmc consumes uniforms only for dimensions beyond
/// ScrambledSobol::kDims. Per-row call counts never
/// affect block/substream scheduling (monte_carlo_rows seeds each block
/// independently), so every plan stays deterministic for any worker
/// count. `qmc` must be non-null when plan is kQmc (callers hold one per
/// run, built from the run seed); `n_rows` is the stratum count for the
/// stratified plan.
double plan_row_uniforms(const SamplingPlan& plan, Xoshiro256pp& rng,
                         std::size_t row, std::size_t n_rows,
                         std::span<double> u,
                         const ScrambledSobol* qmc = nullptr);

/// SoA block variant of plan_row_uniforms, feeding the SIMD kernels
/// directly: fills the uniforms of rows [lo, hi) into the flat buffer
/// `u` (row r occupies u[(r-lo)*width, (r-lo+1)*width)) from a four-lane
/// substream4 generator, then applies the plan's per-row transform in
/// place and writes each row's likelihood-ratio weight to
/// weights[r - lo] (weights may be null for unweighted plans).
///
/// The uniform stream is the X4 generator's interleaved output consumed
/// contiguously — a DIFFERENT stream than hi-lo plan_row_uniforms calls
/// on a scalar substream, but a deterministic function of (seed, block)
/// alone, so results are independent of thread count and dispatch
/// backend (the fill_uniform4 kernel is byte-identical across backends).
/// `u` is resized internally (the fill pads to a multiple of four; the
/// pad draws are part of the stream contract).
void plan_block_uniforms(const SamplingPlan& plan, Xoshiro256ppX4& rng,
                         std::size_t lo, std::size_t hi, std::size_t n_rows,
                         std::size_t width, std::vector<double>& u,
                         double* weights,
                         const ScrambledSobol* qmc = nullptr);

/// A Monte Carlo sample with optional likelihood-ratio weights. An empty
/// weights vector means every sample has unit weight (the unweighted
/// plans leave it empty so downstream code keeps its exact historical
/// arithmetic).
struct WeightedSamples {
  std::vector<double> values;
  std::vector<double> weights;

  bool weighted() const noexcept { return !weights.empty(); }
  /// Kish effective sample size; values.size() when unweighted.
  double ess() const;
};

/// Planned scalar Monte Carlo on top of stats::monte_carlo_rows: row i's
/// `draws_per_sample` uniforms are generated under `plan` and handed to
/// `transform(rng, u)`, whose return value is sample i. The transform may
/// take extra pseudorandom draws from `rng` AFTER the planned uniforms.
/// Substream scheduling matches the unplanned runners, so the naive plan
/// with a transform that would have drawn its own uniforms first is
/// byte-identical to the hand-written monte_carlo closure.
WeightedSamples monte_carlo_planned(
    std::size_t n, std::size_t draws_per_sample, const SamplingPlan& plan,
    const std::function<double(Xoshiro256pp&, std::span<const double>)>&
        transform,
    const MonteCarloOptions& opt = {});

/// Kish effective sample size (sum w)^2 / sum w^2 of a weight vector.
/// n identical weights give exactly n; one dominant weight gives ~1.
double effective_sample_size(std::span<const double> weights);

/// Self-normalized weighted mean sum(w*x)/sum(w).
double weighted_mean(std::span<const double> values,
                     std::span<const double> weights);

/// Half-width of the normal-approximation CI of the weighted mean:
/// z * weighted_stddev / sqrt(ESS). Unweighted when weights is empty.
double weighted_mean_ci_halfwidth(std::span<const double> values,
                                  std::span<const double> weights,
                                  double z = 1.959963984540054);

/// p-th percentile (p in [0,100]) of a weighted sample via the weighted
/// generalization of the type-7 interpolated quantile: sorted element k
/// sits at ECDF position S_{k-1} / (W - w_k) (which reduces to k/(n-1)
/// for equal weights, matching stats::percentile exactly), and the value
/// is interpolated linearly between bracketing positions. An empty
/// weights span means unit weights. Precondition: values non-empty,
/// weights empty or the same length with a positive sum.
double weighted_percentile(std::span<const double> values,
                           std::span<const double> weights, double p);

/// Distribution-free normal-approximation confidence interval for the
/// p-th percentile of a weighted sample: the ECDF level p is perturbed
/// by +-z*sqrt(p*(1-p)/ESS) and the endpoints are the weighted
/// percentiles at the perturbed levels. For importance-weighted tails
/// this uses ESS in place of n — an approximation (exact variance needs
/// the weight/indicator covariance), but a conservative and monotone
/// one; docs/SAMPLING.md discusses the error term.
struct QuantileCi {
  double estimate = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  double halfwidth() const noexcept { return 0.5 * (hi - lo); }
  /// Half-width relative to the estimate (0 when the estimate is 0).
  double rel_halfwidth() const noexcept {
    return estimate != 0.0 ? halfwidth() / estimate : 0.0;
  }
};
QuantileCi weighted_percentile_ci(std::span<const double> values,
                                  std::span<const double> weights, double p,
                                  double z = 1.959963984540054);

}  // namespace ntv::stats
