// Anderson-Darling normality test.
//
// The paper represents Vth and LER variations as normal distributions and
// its chain-delay histograms look Gaussian; the AD statistic lets the
// tests check where normality actually holds in our model (chains,
// sums) and where it visibly fails (single near-threshold gates, lane
// maxima — both right-skewed).
#pragma once

#include <span>

namespace ntv::stats {

/// Result of the Anderson-Darling test against a normal distribution with
/// estimated mean/variance (case 3, Stephens' small-sample correction).
struct AndersonDarlingResult {
  double a2 = 0.0;        ///< Corrected A^2* statistic.
  bool normal_at_5pct = false;  ///< A^2* below the 5% critical value 0.752.
  bool normal_at_1pct = false;  ///< A^2* below the 1% critical value 1.035.
};

/// Runs the test. Requires at least 8 observations (throws otherwise).
AndersonDarlingResult anderson_darling_normal(std::span<const double> data);

}  // namespace ntv::stats
