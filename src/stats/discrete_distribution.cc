#include "stats/discrete_distribution.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.h"
#include "simd/simd.h"
#include "stats/fft.h"

namespace ntv::stats {

GridDistribution::GridDistribution(double lo, double step,
                                   std::vector<double> pmf)
    : lo_(lo), step_(step), pmf_(std::move(pmf)) {
  if (pmf_.empty())
    throw std::invalid_argument("GridDistribution: empty pmf");
  if (step_ <= 0.0)
    throw std::invalid_argument("GridDistribution: step must be positive");

  double sum = 0.0;
  for (double p : pmf_) {
    if (p < 0.0)
      throw std::invalid_argument("GridDistribution: negative mass");
    sum += p;
  }
  if (sum <= 0.0)
    throw std::invalid_argument("GridDistribution: zero total mass");
  for (auto& p : pmf_) p /= sum;

  cdf_.resize(pmf_.size());
  double acc = 0.0;
  double m1 = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    acc += pmf_[i];
    cdf_[i] = acc;
    m1 += pmf_[i] * (lo_ + step_ * static_cast<double>(i));
  }
  cdf_.back() = 1.0;
  mean_ = m1;

  double m2 = 0.0, m3 = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    const double d = lo_ + step_ * static_cast<double>(i) - mean_;
    m2 += pmf_[i] * d * d;
    m3 += pmf_[i] * d * d * d;
  }
  var_ = m2;
  skew_ = (m2 > 0.0) ? m3 / std::pow(m2, 1.5) : 0.0;

  build_guide();
}

void GridDistribution::build_guide() {
  // The guide could be built lazily on first quantile(), but every
  // distribution that reaches a sampler is queried millions of times and
  // the build is a single O(n + K) pass over an already-computed CDF, so
  // eager construction keeps the class trivially immutable (no
  // synchronization on the read path, copies stay cheap value types).
  if (pmf_.size() > std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("GridDistribution: grid too large");
  // One bucket per grid point (rounded up to a power of two) keeps the
  // expected forward scan below one step even for the ~200k-bin chain
  // convolution grids, whose flat CDF tails pack many indices per bucket
  // at coarser resolutions. The cap bounds the table at 4 MB of u32 for
  // pathological grids; the cached distributions stay around 1 MB.
  const std::size_t buckets =
      std::bit_ceil(std::min<std::size_t>(pmf_.size(), std::size_t{1} << 20));
  guide_.resize(buckets + 1);
  guide_buckets_ = static_cast<double>(buckets);
  std::size_t i = 0;
  for (std::size_t j = 0; j <= buckets; ++j) {
    const double threshold =
        static_cast<double>(j) / static_cast<double>(buckets);
    while (i + 1 < cdf_.size() && cdf_[i] < threshold) ++i;
    guide_[j] = static_cast<std::uint32_t>(i);
  }
}

double GridDistribution::stddev() const noexcept { return std::sqrt(var_); }

double GridDistribution::three_sigma_over_mu_pct() const noexcept {
  if (mean_ == 0.0) return 0.0;
  return 100.0 * 3.0 * stddev() / mean_;
}

double GridDistribution::cdf(double x) const noexcept {
  // Mass sits ON grid points: P(X <= lo) includes the first point's mass,
  // so only x strictly below the grid returns 0 (keeps quantile() and
  // cdf() mutually consistent at the origin).
  if (x < lo_) return 0.0;
  const double pos = (x - lo_) / step_;
  // Compare in double BEFORE truncating: x at or beyond the top grid point
  // saturates to 1.0, while x inside the final grid step interpolates
  // cdf_[size-2] -> cdf_[size-1] (== 1.0) like every other step. The old
  // size_t cast of an unbounded `pos` was undefined for x far above the
  // grid and collapsed the top-bin handling into the saturation branch.
  if (pos >= static_cast<double>(pmf_.size() - 1)) return 1.0;
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  const double c0 = cdf_[idx];
  const double c1 = cdf_[idx + 1];
  return c0 + frac * (c1 - c0);
}

std::size_t GridDistribution::quantile_index(double u,
                                             std::size_t& scans) const
    noexcept {
  // Bucket lookup. u <= 1.0, so the raw bucket is at most buckets (the
  // guide has buckets + 1 entries); the min() also guards the rounding-up
  // case where u * buckets lands exactly on an integer above u's bucket.
  const auto raw = static_cast<std::size_t>(u * guide_buckets_);
  std::size_t idx =
      guide_[std::min(raw, static_cast<std::size_t>(guide_buckets_))];
  // The guide start can overshoot only when floating rounding promoted u
  // into the next bucket; one backward step per promotion restores the
  // lower_bound contract (first index with cdf_[idx] >= u).
  while (idx > 0 && cdf_[idx - 1] >= u) --idx;
  while (cdf_[idx] < u) {
    ++idx;
    ++scans;
  }
  return idx;
}

double GridDistribution::quantile_impl(double u, std::size_t& scans) const
    noexcept {
  u = std::clamp(u, 1e-300, 1.0);
  const std::size_t idx = quantile_index(u, scans);
  if (idx == 0) return lo_;
  const double c0 = cdf_[idx - 1];
  const double c1 = cdf_[idx];
  const double frac = (c1 > c0) ? (u - c0) / (c1 - c0) : 0.0;
  return lo_ + step_ * (static_cast<double>(idx - 1) + frac);
}

double GridDistribution::quantile(double u) const noexcept {
  std::size_t scans = 0;
  return quantile_impl(u, scans);
}

double GridDistribution::max_quantile(double u, int k) const {
  if (k < 1) throw std::invalid_argument("max_quantile: k must be >= 1");
  u = std::clamp(u, 1e-300, 1.0);
  return quantile(std::pow(u, 1.0 / static_cast<double>(k)));
}

namespace {

/// Hot-path counters resolved once (registry lookups take a mutex).
/// Sharded: every pool worker bumps these once per sampled block, and a
/// single relaxed atomic turns that into one cache line ping-ponging
/// across all cores (PR 4 fix; tests/stats/variance_reduction_test.cc
/// holds the concurrent-exactness regression test and the TSan job
/// covers it).
obs::ShardedCounter& guide_hits_counter() {
  static obs::ShardedCounter& c =
      obs::sharded_counter("stats.quantile.guide_hits");
  return c;
}
obs::ShardedCounter& guide_scans_counter() {
  static obs::ShardedCounter& c =
      obs::sharded_counter("stats.quantile.scans");
  return c;
}

}  // namespace

simd::QuantileGrid GridDistribution::grid_view() const noexcept {
  return simd::QuantileGrid{cdf_.data(),          cdf_.size(),
                            guide_.data(),        guide_buckets_,
                            lo_,                  step_};
}

void GridDistribution::quantile_batch(std::span<const double> u,
                                      std::span<double> out) const {
  if (u.size() != out.size())
    throw std::invalid_argument("quantile_batch: size mismatch");
  // SoA pass through the SIMD kernel layer: the active backend (scalar /
  // AVX2 / NEON) is byte-identical to the per-call quantile() — the
  // scalar kernel IS quantile_impl, and the wide ones are bit-exact
  // against it by the kernel-layer contract.
  std::size_t scans = 0;
  simd::kernels().quantile(grid_view(), u.data(), out.data(), u.size(),
                           &scans);
  guide_hits_counter().add(static_cast<std::int64_t>(u.size()));
  guide_scans_counter().add(static_cast<std::int64_t>(scans));
}

namespace {

/// Per-thread staging buffer for max_quantile_batch's u^(1/k) pass.
std::vector<double>& pow_scratch() {
  thread_local std::vector<double> scratch;
  return scratch;
}

}  // namespace

void GridDistribution::max_quantile_batch(std::span<const double> u, int k,
                                          std::span<double> out) const {
  if (k < 1)
    throw std::invalid_argument("max_quantile_batch: k must be >= 1");
  if (u.size() != out.size())
    throw std::invalid_argument("max_quantile_batch: size mismatch");
  // Hoist the 1/k exponent; the per-sample pow stays (it is what defines
  // Q_max(u) = Q(u^(1/k)) and must round identically to the scalar path).
  // libm pow is kept OUT of the kernel layer (byte-identity rule 2): the
  // clamp+pow pass runs scalar into a staging buffer, then the shared
  // quantile kernel consumes it — value-identical to the fused loop and
  // bit-identical across backends.
  const double exponent = 1.0 / static_cast<double>(k);
  const double* src = u.data();
  std::vector<double>& scratch = pow_scratch();
  scratch.resize(u.size());
  for (std::size_t i = 0; i < u.size(); ++i) {
    scratch[i] = std::pow(std::clamp(src[i], 1e-300, 1.0), exponent);
  }
  std::size_t scans = 0;
  simd::kernels().quantile(grid_view(), scratch.data(), out.data(),
                           u.size(), &scans);
  guide_hits_counter().add(static_cast<std::int64_t>(u.size()));
  guide_scans_counter().add(static_cast<std::int64_t>(scans));
}

GridDistribution GridDistribution::sum_of_iid(int n) const {
  if (n < 1) throw std::invalid_argument("sum_of_iid: n must be >= 1");
  if (n == 1) return *this;
  return GridDistribution(lo_ * n, step_, pmf_power(pmf_, n));
}

GridDistribution GridDistribution::max_of_iid(int k) const {
  if (k < 1) throw std::invalid_argument("max_of_iid: k must be >= 1");
  if (k == 1) return *this;
  std::vector<double> pmf(pmf_.size());
  double prev = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    const double cur = std::pow(cdf_[i], k);
    pmf[i] = std::max(cur - prev, 0.0);
    prev = cur;
  }
  return GridDistribution(lo_, step_, std::move(pmf));
}

namespace {

/// P(Binomial(n, p) >= r) when the tail is the SMALL one (p <= r/n):
/// stable decreasing term-recurrence sum from j = r upward.
double binomial_sf_small_tail(int r, int n, double p) {
  // log C(n, r) + r log p + (n - r) log(1 - p) via lgamma.
  const double log_term0 = std::lgamma(n + 1.0) - std::lgamma(r + 1.0) -
                           std::lgamma(n - r + 1.0) +
                           r * std::log(p) + (n - r) * std::log1p(-p);
  double term = std::exp(log_term0);
  double sum = term;
  const double ratio_base = p / (1.0 - p);
  for (int j = r; j < n; ++j) {
    term *= ratio_base * static_cast<double>(n - j) /
            static_cast<double>(j + 1);
    sum += term;
    if (term < 1e-18 * sum) break;
  }
  return std::min(sum, 1.0);
}

}  // namespace

/// P(Binomial(n, p) >= r), accurate in both tails. When p is above the
/// mode the direct sum's leading term underflows (it sits deep in the
/// lower tail), so reflect: P(X >= r) = 1 - P(n - X >= n - r + 1) with
/// n - X ~ Binomial(n, 1 - p).
double binomial_sf(int r, int n, double p) {
  if (r <= 0) return 1.0;
  if (r > n) return 0.0;
  if (p <= 0.0) return 0.0;
  if (p >= 1.0) return 1.0;
  if (p * static_cast<double>(n) > static_cast<double>(r)) {
    return 1.0 - binomial_sf_small_tail(n - r + 1, n, 1.0 - p);
  }
  return binomial_sf_small_tail(r, n, p);
}

GridDistribution GridDistribution::order_statistic(int r, int n) const {
  if (n < 1 || r < 1 || r > n)
    throw std::invalid_argument("order_statistic: need 1 <= r <= n");
  if (n == 1) return *this;
  if (r == n) return max_of_iid(n);
  std::vector<double> pmf(pmf_.size());
  double prev = 0.0;
  for (std::size_t i = 0; i < pmf_.size(); ++i) {
    const double cur = binomial_sf(r, n, cdf_[i]);
    pmf[i] = std::max(cur - prev, 0.0);
    prev = cur;
  }
  return GridDistribution(lo_, step_, std::move(pmf));
}

GridDistribution GridDistribution::max_of_independent(
    const GridDistribution& a, const GridDistribution& b) {
  const double rel = std::abs(a.step_ - b.step_) / a.step_;
  if (rel > 1e-9)
    throw std::invalid_argument(
        "GridDistribution::max_of_independent: step mismatch");
  const double lo = std::min(a.lo_, b.lo_);
  const double hi =
      std::max(a.lo_ + a.step_ * static_cast<double>(a.size() - 1),
               b.lo_ + b.step_ * static_cast<double>(b.size() - 1));
  const auto bins =
      static_cast<std::size_t>(std::llround((hi - lo) / a.step_)) + 1;
  std::vector<double> pmf(bins);
  double prev = 0.0;
  for (std::size_t i = 0; i < bins; ++i) {
    const double x = lo + a.step_ * static_cast<double>(i);
    const double cur = a.cdf(x) * b.cdf(x);
    pmf[i] = std::max(cur - prev, 0.0);
    prev = cur;
  }
  return GridDistribution(lo, a.step_, std::move(pmf));
}

GridDistribution GridDistribution::convolve(const GridDistribution& a,
                                            const GridDistribution& b) {
  const double rel = std::abs(a.step_ - b.step_) / a.step_;
  if (rel > 1e-9)
    throw std::invalid_argument("GridDistribution::convolve: step mismatch");

  const std::size_t out_size = a.pmf_.size() + b.pmf_.size() - 1;
  const std::size_t n = next_pow2(out_size);
  std::vector<std::complex<double>> fa(n), fb(n);
  for (std::size_t i = 0; i < a.pmf_.size(); ++i) fa[i] = a.pmf_[i];
  for (std::size_t i = 0; i < b.pmf_.size(); ++i) fb[i] = b.pmf_[i];
  fft(fa, false);
  fft(fb, false);
  for (std::size_t i = 0; i < n; ++i) fa[i] *= fb[i];
  fft(fa, true);

  std::vector<double> pmf(out_size);
  for (std::size_t i = 0; i < out_size; ++i) {
    pmf[i] = std::max(fa[i].real(), 0.0);
  }
  return GridDistribution(a.lo_ + b.lo_, a.step_, std::move(pmf));
}

}  // namespace ntv::stats
