// Normal distribution functions: pdf, cdf, inverse cdf, moment fitting.
//
// The paper models both dominant variation sources (Vth via random dopant
// fluctuation, and line-edge roughness) as normal distributions; the
// calibration fitter needs accurate normal quantiles.
#pragma once

#include <span>

namespace ntv::stats {

/// Standard normal probability density.
double normal_pdf(double x) noexcept;

/// Standard normal cumulative distribution (via std::erfc; ~1e-15 accurate).
double normal_cdf(double x) noexcept;

/// Inverse standard normal CDF (Acklam's rational approximation refined by
/// one Halley step; accurate to ~1e-15 over (0,1)).
/// Throws std::domain_error for p outside (0, 1).
double normal_quantile(double p);

/// Parameters of a fitted normal.
struct NormalFit {
  double mean = 0.0;
  double stddev = 0.0;
};

/// Moment-matching fit (sample mean / unbiased stddev).
NormalFit fit_normal(std::span<const double> data) noexcept;

/// Expected value of the maximum of n i.i.d. standard normals
/// (exact 1-D Gauss–Hermite style numeric integration).
/// This drives the analytic cross-check of the "max over lanes" shift in
/// the architecture model tests.
double expected_max_of_normals(int n);

}  // namespace ntv::stats
