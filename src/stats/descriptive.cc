#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace ntv::stats {

Summary::Summary(std::span<const double> data) {
  for (double x : data) add(x);
}

Summary Summary::from_moments(std::size_t n, double mean, double m2,
                              double m3, double m4, double min,
                              double max) noexcept {
  Summary s;
  if (n == 0) return s;
  s.n_ = n;
  s.mean_ = mean;
  s.m2_ = m2;
  s.m3_ = m3;
  s.m4_ = m4;
  s.min_ = min;
  s.max_ = max;
  return s;
}

void Summary::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  // Welford / Terriberry update of central moments.
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

void Summary::merge(const Summary& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ +
                    delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double Summary::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Summary::stddev() const noexcept { return std::sqrt(variance()); }

double Summary::three_sigma_over_mu_pct() const noexcept {
  if (mean_ == 0.0) return 0.0;
  return 100.0 * 3.0 * stddev() / mean_;
}

double Summary::cv() const noexcept {
  if (mean_ == 0.0) return 0.0;
  return stddev() / mean_;
}

double Summary::skewness() const noexcept {
  if (n_ < 3 || m2_ == 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double Summary::excess_kurtosis() const noexcept {
  if (n_ < 4 || m2_ == 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_) - 3.0;
}

double mean(std::span<const double> data) noexcept {
  return Summary(data).mean();
}

double stddev(std::span<const double> data) noexcept {
  return Summary(data).stddev();
}

double three_sigma_over_mu_pct(std::span<const double> data) noexcept {
  return Summary(data).three_sigma_over_mu_pct();
}

}  // namespace ntv::stats
