#include "stats/percentile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ntv::stats {

double percentile_sorted(std::span<const double> sorted, double p) {
  assert(!sorted.empty());
  if (sorted.size() == 1) return sorted.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double percentile(std::span<const double> data, double p) {
  std::vector<double> copy(data.begin(), data.end());
  std::sort(copy.begin(), copy.end());
  return percentile_sorted(copy, p);
}

std::vector<double> percentiles(std::span<const double> data,
                                std::span<const double> ps) {
  std::vector<double> copy(data.begin(), data.end());
  std::sort(copy.begin(), copy.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(percentile_sorted(copy, p));
  return out;
}

std::vector<double> smallest_k(std::span<const double> data, std::size_t k) {
  std::vector<double> copy(data.begin(), data.end());
  k = std::min(k, copy.size());
  std::partial_sort(copy.begin(), copy.begin() + static_cast<std::ptrdiff_t>(k),
                    copy.end());
  copy.resize(k);
  return copy;
}

double kth_smallest(std::span<const double> data, std::size_t k) {
  assert(k < data.size());
  std::vector<double> copy(data.begin(), data.end());
  auto mid = copy.begin() + static_cast<std::ptrdiff_t>(k);
  std::nth_element(copy.begin(), mid, copy.end());
  return *mid;
}

double median(std::span<const double> data) { return percentile(data, 50.0); }

}  // namespace ntv::stats
