// Percentile and order statistics.
//
// The paper signs off designs at the 99 % point of the chip-delay
// distribution ("fo4chipd"); `percentile(data, 99.0)` is that operation.
#pragma once

#include <span>
#include <vector>

namespace ntv::stats {

/// Returns the p-th percentile (p in [0,100]) with linear interpolation
/// between closest ranks (type-7 quantile, the R/NumPy default).
/// Precondition: data is non-empty.
double percentile(std::span<const double> data, double p);

/// Like `percentile`, but assumes the data is already sorted ascending.
double percentile_sorted(std::span<const double> sorted, double p);

/// Returns several percentiles in one pass over a single sorted copy.
std::vector<double> percentiles(std::span<const double> data,
                                std::span<const double> ps);

/// Returns the k smallest elements, sorted ascending (k-order statistics).
/// Used by the structural-duplication solver: keeping the 128 fastest of
/// 128+alpha lanes is `smallest_k(lane_delays, 128)`.
std::vector<double> smallest_k(std::span<const double> data, std::size_t k);

/// Returns the k-th smallest element (0-based). Precondition: k < size.
double kth_smallest(std::span<const double> data, std::size_t k);

/// Median (50th percentile).
double median(std::span<const double> data);

}  // namespace ntv::stats
