#include "stats/merge.h"

#include <algorithm>
#include <cmath>

namespace ntv::stats {

void MomentSketch::add_block(std::size_t block,
                             std::span<const double> values) {
  if (leaves_.count(block) != 0) return;  // Each block has one owner.
  leaves_.emplace(block, Summary(values));
}

void MomentSketch::merge(const MomentSketch& other) {
  for (const auto& [block, leaf] : other.leaves_) {
    leaves_.emplace(block, leaf);  // No overwrite on ownership violation.
  }
}

Summary MomentSketch::finalize() const {
  // Ascending block order is the canonical fold: the folded summary is a
  // pure function of the leaf set, so ANY merge grouping of shards ends
  // in identical bits here.
  Summary acc;
  for (const auto& [block, leaf] : leaves_) acc.merge(leaf);
  return acc;
}

std::vector<double> MomentSketch::serialize() const {
  std::vector<double> out;
  out.reserve(leaves_.size() * 8);
  for (const auto& [block, leaf] : leaves_) {
    out.push_back(static_cast<double>(block));
    out.push_back(static_cast<double>(leaf.count()));
    out.push_back(leaf.mean());
    out.push_back(leaf.m2());
    out.push_back(leaf.m3());
    out.push_back(leaf.m4());
    out.push_back(leaf.min());
    out.push_back(leaf.max());
  }
  return out;
}

std::optional<MomentSketch> MomentSketch::deserialize(
    std::span<const double> payload) {
  if (payload.size() % 8 != 0) return std::nullopt;
  MomentSketch sketch;
  for (std::size_t i = 0; i < payload.size(); i += 8) {
    const auto block = static_cast<std::size_t>(payload[i]);
    const auto n = static_cast<std::size_t>(payload[i + 1]);
    sketch.leaves_.emplace(
        block, Summary::from_moments(n, payload[i + 2], payload[i + 3],
                                     payload[i + 4], payload[i + 5],
                                     payload[i + 6], payload[i + 7]));
  }
  return sketch;
}

std::size_t tail_keep(std::size_t n, double p, double z) {
  if (n <= 1) return n;
  const double p01 = std::clamp(p, 0.0, 100.0) / 100.0;
  const double se = std::sqrt(p01 * (1.0 - p01) / static_cast<double>(n));
  const double lo01 = std::clamp(p01 - z * se, 0.0, 1.0);
  // Lowest rank any probe can interpolate from: floor(lo01 * (n-1)).
  // Keep everything at or above it, plus slack for the floor/ceil pair.
  const auto rank_lo =
      static_cast<std::size_t>(std::floor(lo01 * static_cast<double>(n - 1)));
  const std::size_t keep = n - std::min(rank_lo, n - 1) + 2;
  return std::min(n, keep);
}

TailSketch tail_sketch(std::span<const double> owned_values, std::uint64_t n,
                       std::size_t keep) {
  TailSketch sketch;
  sketch.n = n;
  sketch.owned = owned_values.size();
  sketch.values.assign(owned_values.begin(), owned_values.end());
  if (sketch.values.size() > keep) {
    // Exact largest-keep: everything from position size-keep up.
    std::nth_element(sketch.values.begin(),
                     sketch.values.end() - static_cast<std::ptrdiff_t>(keep),
                     sketch.values.end());
    sketch.values.erase(sketch.values.begin(),
                        sketch.values.end() -
                            static_cast<std::ptrdiff_t>(keep));
  }
  std::sort(sketch.values.begin(), sketch.values.end());
  return sketch;
}

std::optional<TailSketch> merge_tails(std::span<const TailSketch> shards,
                                      std::size_t keep) {
  if (shards.empty()) return std::nullopt;
  TailSketch merged;
  merged.n = shards.front().n;
  std::uint64_t covered = 0;
  std::size_t total = 0;
  for (const TailSketch& s : shards) {
    if (s.n != merged.n) return std::nullopt;
    covered += s.owned;
    total += s.values.size();
  }
  // Every sample must be owned by exactly one shard; a gap or an overlap
  // would silently shift ranks, so refuse to merge instead.
  if (covered != merged.n) return std::nullopt;
  merged.owned = merged.n;
  merged.values.reserve(total);
  for (const TailSketch& s : shards) {
    merged.values.insert(merged.values.end(), s.values.begin(),
                         s.values.end());
  }
  std::sort(merged.values.begin(), merged.values.end());
  const std::size_t cap =
      std::min<std::size_t>(keep, static_cast<std::size_t>(merged.n));
  if (merged.values.size() > cap) {
    merged.values.erase(merged.values.begin(),
                        merged.values.end() -
                            static_cast<std::ptrdiff_t>(cap));
  }
  return merged;
}

std::optional<double> percentile_from_tail(const TailSketch& tail, double p) {
  const auto n = static_cast<std::size_t>(tail.n);
  if (n == 0 || tail.values.empty()) return std::nullopt;
  // Mirrors stats::percentile_sorted on the virtual full sorted column:
  // global rank r lives at tail index r - (n - kept).
  if (n == 1) return tail.values.front();
  const double clamped = std::clamp(p, 0.0, 100.0);
  const double rank = clamped / 100.0 * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  const std::size_t first = n - tail.values.size();
  if (lo < first || hi >= n) return std::nullopt;
  const double vlo = tail.values[lo - first];
  const double vhi = tail.values[hi - first];
  return vlo + frac * (vhi - vlo);
}

std::optional<QuantileCi> quantile_ci_from_tail(const TailSketch& tail,
                                                double p, double z) {
  // Replicates stats::weighted_percentile_ci with empty weights: ess is
  // the sample count, probe levels are 100·clamp(p01 ± z·se, 0, 1).
  QuantileCi ci;
  const auto estimate = percentile_from_tail(tail, p);
  if (!estimate) return std::nullopt;
  ci.estimate = *estimate;
  const double ess = static_cast<double>(tail.n);
  if (ess <= 1.0) {
    ci.lo = ci.hi = ci.estimate;
    return ci;
  }
  const double p01 = std::clamp(p, 0.0, 100.0) / 100.0;
  const double se = std::sqrt(p01 * (1.0 - p01) / ess);
  const auto lo =
      percentile_from_tail(tail, 100.0 * std::clamp(p01 - z * se, 0.0, 1.0));
  const auto hi =
      percentile_from_tail(tail, 100.0 * std::clamp(p01 + z * se, 0.0, 1.0));
  if (!lo || !hi) return std::nullopt;
  ci.lo = *lo;
  ci.hi = *hi;
  return ci;
}

std::vector<double> serialize_tails(std::span<const TailSketch> columns) {
  std::vector<double> out;
  if (columns.empty()) return out;
  const std::size_t len = columns.front().values.size();
  out.reserve(4 + columns.size() * len);
  out.push_back(static_cast<double>(columns.front().n));
  out.push_back(static_cast<double>(columns.front().owned));
  out.push_back(static_cast<double>(columns.size()));
  out.push_back(static_cast<double>(len));
  for (const TailSketch& c : columns) {
    if (c.values.size() != len || c.n != columns.front().n ||
        c.owned != columns.front().owned) {
      return {};  // Mixed-shape columns: refuse rather than mis-decode.
    }
    out.insert(out.end(), c.values.begin(), c.values.end());
  }
  return out;
}

std::vector<TailSketch> deserialize_tails(std::span<const double> payload) {
  if (payload.size() < 4) return {};
  const auto n = static_cast<std::uint64_t>(payload[0]);
  const auto owned = static_cast<std::uint64_t>(payload[1]);
  const auto n_columns = static_cast<std::size_t>(payload[2]);
  const auto len = static_cast<std::size_t>(payload[3]);
  if (payload.size() != 4 + n_columns * len) return {};
  std::vector<TailSketch> columns(n_columns);
  const double* cursor = payload.data() + 4;
  for (TailSketch& c : columns) {
    c.n = n;
    c.owned = owned;
    c.values.assign(cursor, cursor + len);
    cursor += len;
  }
  return columns;
}

std::optional<Histogram> merge_histograms(std::span<const Histogram> parts) {
  if (parts.empty()) return std::nullopt;
  const Histogram& first = parts.front();
  Histogram merged(first.lo(), first.hi(), first.bin_count());
  for (const Histogram& part : parts) {
    if (part.lo() != first.lo() || part.hi() != first.hi() ||
        part.bin_count() != first.bin_count()) {
      return std::nullopt;
    }
    // Replay each bin at its center: counts add exactly (integers), so
    // the merge is commutative and associative.
    for (std::size_t b = 0; b < part.bin_count(); ++b) {
      for (std::size_t i = 0; i < part.count(b); ++i) {
        merged.add(part.bin_center(b));
      }
    }
    for (std::size_t i = 0; i < part.underflow(); ++i) {
      merged.add(std::nextafter(first.lo(), -1e308));
    }
    for (std::size_t i = 0; i < part.overflow(); ++i) {
      merged.add(std::nextafter(first.hi(), 1e308));
    }
  }
  return merged;
}

Ecdf merge_ecdfs(std::span<const Ecdf> parts) {
  std::vector<double> all;
  std::size_t total = 0;
  for (const Ecdf& part : parts) total += part.size();
  all.reserve(total);
  for (const Ecdf& part : parts) {
    all.insert(all.end(), part.sorted().begin(), part.sorted().end());
  }
  return Ecdf(all);
}

}  // namespace ntv::stats
