#include "stats/root_find.h"

#include <cmath>
#include <stdexcept>

namespace ntv::stats {

RootResult bisect(const std::function<double(double)>& f, double lo,
                  double hi, const RootOptions& opt) {
  double flo = f(lo);
  double fhi = f(hi);
  if (flo == 0.0) return {lo, 0.0, 0, true};
  if (fhi == 0.0) return {hi, 0.0, 0, true};
  if ((flo > 0.0) == (fhi > 0.0))
    throw std::invalid_argument("bisect: no sign change on bracket");

  RootResult r;
  for (r.iterations = 0; r.iterations < opt.max_iter; ++r.iterations) {
    const double mid = 0.5 * (lo + hi);
    const double fmid = f(mid);
    r.x = mid;
    r.f = fmid;
    if (std::abs(fmid) <= opt.f_tol || (hi - lo) < opt.x_tol) {
      r.converged = true;
      return r;
    }
    if ((fmid > 0.0) == (flo > 0.0)) {
      lo = mid;
      flo = fmid;
    } else {
      hi = mid;
    }
  }
  r.converged = (hi - lo) < opt.x_tol * 10;
  return r;
}

RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& opt) {
  double a = lo, b = hi;
  double fa = f(a), fb = f(b);
  if (fa == 0.0) return {a, 0.0, 0, true};
  if (fb == 0.0) return {b, 0.0, 0, true};
  if ((fa > 0.0) == (fb > 0.0))
    throw std::invalid_argument("brent: no sign change on bracket");

  double c = a, fc = fa;
  double d = b - a, e = d;
  RootResult r;
  for (r.iterations = 0; r.iterations < opt.max_iter; ++r.iterations) {
    if (std::abs(fc) < std::abs(fb)) {
      a = b; b = c; c = a;
      fa = fb; fb = fc; fc = fa;
    }
    const double tol = 2.0 * 1e-16 * std::abs(b) + 0.5 * opt.x_tol;
    const double m = 0.5 * (c - b);
    r.x = b;
    r.f = fb;
    if (std::abs(m) <= tol || fb == 0.0 || std::abs(fb) <= opt.f_tol) {
      r.converged = true;
      return r;
    }
    if (std::abs(e) < tol || std::abs(fa) <= std::abs(fb)) {
      d = m;
      e = m;
    } else {
      double p, q;
      const double s = fb / fa;
      if (a == c) {  // Secant step.
        p = 2.0 * m * s;
        q = 1.0 - s;
      } else {  // Inverse quadratic interpolation.
        const double qq = fa / fc;
        const double rr = fb / fc;
        p = s * (2.0 * m * qq * (qq - rr) - (b - a) * (rr - 1.0));
        q = (qq - 1.0) * (rr - 1.0) * (s - 1.0);
      }
      if (p > 0.0) q = -q; else p = -p;
      if (2.0 * p < std::min(3.0 * m * q - std::abs(tol * q),
                             std::abs(e * q))) {
        e = d;
        d = p / q;
      } else {
        d = m;
        e = m;
      }
    }
    a = b;
    fa = fb;
    b += (std::abs(d) > tol) ? d : (m > 0 ? tol : -tol);
    fb = f(b);
    if ((fb > 0.0) == (fc > 0.0)) {
      c = a;
      fc = fa;
      e = d = b - a;
    }
  }
  return r;
}

RootResult golden_min(const std::function<double(double)>& f, double lo,
                      double hi, const RootOptions& opt) {
  constexpr double kPhi = 0.6180339887498949;
  double a = lo, b = hi;
  double x1 = b - kPhi * (b - a);
  double x2 = a + kPhi * (b - a);
  double f1 = f(x1), f2 = f(x2);
  RootResult r;
  for (r.iterations = 0; r.iterations < opt.max_iter; ++r.iterations) {
    if ((b - a) < opt.x_tol) break;
    if (f1 < f2) {
      b = x2;
      x2 = x1;
      f2 = f1;
      x1 = b - kPhi * (b - a);
      f1 = f(x1);
    } else {
      a = x1;
      x1 = x2;
      f1 = f2;
      x2 = a + kPhi * (b - a);
      f2 = f(x2);
    }
  }
  r.converged = (b - a) < opt.x_tol * 10;
  if (f1 < f2) {
    r.x = x1;
    r.f = f1;
  } else {
    r.x = x2;
    r.f = f2;
  }
  return r;
}

long smallest_true(const std::function<bool(long)>& pred, long lo, long hi) {
  if (lo > hi) return hi + 1;
  if (!pred(hi)) return hi + 1;
  while (lo < hi) {
    const long mid = lo + (hi - lo) / 2;
    if (pred(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace ntv::stats
