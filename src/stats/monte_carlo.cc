#include "stats/monte_carlo.h"

#include <algorithm>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "stats/shard.h"

namespace ntv::stats {

int resolved_thread_count(int requested) {
  if (requested == 1) return 1;
  if (requested > 1) return requested;
  return exec::ThreadPool::global_thread_count();
}

Xoshiro256pp substream(std::uint64_t seed, std::size_t index) {
  // Derive an independent stream per block by mixing the block index into
  // the seed with SplitMix64 (O(1), unlike chained jump()s which would make
  // the whole run quadratic in the number of blocks).
  SplitMix64 mixer(seed ^ (0xA24BAED4963EE407ULL * (index + 1)));
  return Xoshiro256pp(mixer.next());
}

Xoshiro256ppX4 substream4(std::uint64_t seed, std::size_t index) {
  return Xoshiro256ppX4(seed ^ (0xA24BAED4963EE407ULL * (index + 1)));
}

std::vector<double> monte_carlo(
    std::size_t n, const std::function<double(Xoshiro256pp&)>& sampler,
    const MonteCarloOptions& opt) {
  return monte_carlo_rows(
      n, 1,
      [&sampler](Xoshiro256pp& rng, std::size_t, double* out) {
        *out = sampler(rng);
      },
      opt);
}

std::vector<double> monte_carlo_rows(
    std::size_t n, std::size_t width,
    const std::function<void(Xoshiro256pp&, std::size_t, double*)>& sampler,
    const MonteCarloOptions& opt) {
  return monte_carlo_blocks(
      n, width,
      [&sampler, width](Xoshiro256pp& rng, std::size_t lo, std::size_t hi,
                        double* out) {
        for (std::size_t row = lo; row < hi; ++row) {
          sampler(rng, row, out + (row - lo) * width);
        }
      },
      opt);
}

void monte_carlo_rows_into(
    double* out, std::size_t n, std::size_t width,
    const std::function<void(Xoshiro256pp&, std::size_t, double*)>& sampler,
    const MonteCarloOptions& opt) {
  monte_carlo_blocks_into(
      out, n, width,
      [&sampler, width](Xoshiro256pp& rng, std::size_t lo, std::size_t hi,
                        double* block_out) {
        for (std::size_t row = lo; row < hi; ++row) {
          sampler(rng, row, block_out + (row - lo) * width);
        }
      },
      opt);
}

std::vector<double> monte_carlo_blocks(
    std::size_t n, std::size_t width,
    const std::function<void(Xoshiro256pp&, std::size_t, std::size_t,
                             double*)>& sampler,
    const MonteCarloOptions& opt) {
  // Value-initialized, so a shard worker's unowned rows read as zero
  // here (the _into variant leaves them unwritten instead).
  std::vector<double> out(n * width);
  monte_carlo_blocks_into(out.data(), n, width, sampler, opt);
  return out;
}

void monte_carlo_blocks_into(
    double* out, std::size_t n, std::size_t width,
    const std::function<void(Xoshiro256pp&, std::size_t, std::size_t,
                             double*)>& sampler,
    const MonteCarloOptions& opt) {
  if (n == 0) return;

  // Fixed-size blocks keep the sample->substream assignment independent of
  // the worker count: block b covers rows [b*kBlock, min(n,(b+1)*kBlock)),
  // and each block re-derives its RNG from (seed, b) alone.
  constexpr std::size_t kBlock = kMonteCarloBlock;
  const std::size_t blocks = (n + kBlock - 1) / kBlock;

  static obs::Counter& runs_metric = obs::counter("mc.runs");
  static obs::Counter& samples_metric = obs::counter("mc.samples");
  static obs::Counter& substreams_metric = obs::counter("mc.substreams");
  static obs::Timer& wall_metric = obs::timer("mc.wall");
  runs_metric.increment();
  samples_metric.add(static_cast<std::int64_t>(n));
  substreams_metric.add(static_cast<std::int64_t>(blocks));
  obs::ScopedTimer wall_scope(wall_metric);

  auto run_block = [&](std::size_t b) {
    // Shard workers fill only the blocks they own (stats/shard.h); the
    // rest stay zero and are never read — the merger reconstructs the
    // full-sample statistics from the per-shard summaries.
    if (!shard_owns_block(b)) return;
    Xoshiro256pp rng = substream(opt.seed, b);
    const std::size_t lo = b * kBlock;
    const std::size_t hi = std::min(n, lo + kBlock);
    sampler(rng, lo, hi, out + lo * width);
  };

  if (opt.threads == 1) {
    obs::gauge("mc.threads").set(1);
    for (std::size_t b = 0; b < blocks; ++b) run_block(b);
    return;
  }

  exec::ThreadPool& pool = exec::ThreadPool::global();
  obs::gauge("mc.threads").set(pool.thread_count());
  pool.parallel_for(0, blocks, run_block);
}

}  // namespace ntv::stats
