// Empirical cumulative distribution function.
#pragma once

#include <span>
#include <vector>

namespace ntv::stats {

/// Immutable empirical CDF built from a sample. Queries are O(log n).
class Ecdf {
 public:
  /// Builds the ECDF; copies and sorts the sample.
  explicit Ecdf(std::span<const double> data);

  /// Fraction of the sample <= x, in [0, 1].
  double operator()(double x) const noexcept;

  /// Smallest sample value v such that (fraction of sample <= v) >= q.
  /// q must be in (0, 1].
  double quantile(double q) const;

  std::size_t size() const noexcept { return sorted_.size(); }
  const std::vector<double>& sorted() const noexcept { return sorted_; }

  /// Two-sample Kolmogorov–Smirnov statistic: max |F1 - F2|. Used by the
  /// tests to check distribution shifts (e.g. spares tighten the chip
  /// delay distribution).
  static double ks_statistic(const Ecdf& a, const Ecdf& b);

 private:
  std::vector<double> sorted_;
};

}  // namespace ntv::stats
