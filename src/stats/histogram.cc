#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace ntv::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be >= 1");
  if (!(lo < hi)) throw std::invalid_argument("Histogram: need lo < hi");
  bin_width_ = (hi - lo) / static_cast<double>(bins);
}

Histogram Histogram::auto_range(std::span<const double> data,
                                std::size_t bins) {
  if (data.empty()) return Histogram(0.0, 1.0, bins);
  auto [mn, mx] = std::minmax_element(data.begin(), data.end());
  double lo = *mn, hi = *mx;
  if (lo == hi) {  // Degenerate sample: widen symmetrically.
    lo -= 0.5;
    hi += 0.5;
  } else {
    const double pad = (hi - lo) / static_cast<double>(bins) / 2.0;
    lo -= pad;
    hi += pad;
  }
  Histogram h(lo, hi, bins);
  h.add_all(data);
  return h;
}

void Histogram::add(double x) noexcept {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    // The top edge belongs to the last bin so max() is not an overflow.
    if (x == hi_) {
      ++counts_.back();
    } else {
      ++overflow_;
    }
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / bin_width_);
  bin = std::min(bin, counts_.size() - 1);
  ++counts_[bin];
}

void Histogram::add_all(std::span<const double> data) noexcept {
  for (double x : data) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * bin_width_;
}

std::size_t Histogram::max_count() const noexcept {
  if (counts_.empty()) return 0;
  return *std::max_element(counts_.begin(), counts_.end());
}

std::string Histogram::render(std::size_t width,
                              const std::string& unit) const {
  const std::size_t peak = std::max<std::size_t>(max_count(), 1);
  std::string out;
  char label[64];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    std::snprintf(label, sizeof(label), "%12.4g%s | ", bin_center(i),
                  unit.c_str());
    out += label;
    const auto bar =
        counts_[i] * width / peak;
    out.append(bar, '#');
    std::snprintf(label, sizeof(label), " %zu\n", counts_[i]);
    out += label;
  }
  return out;
}

}  // namespace ntv::stats
