#include "stats/shard.h"

#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <mutex>

namespace ntv::stats {
namespace {

// Tape format (little-endian, host order — tapes never cross
// architectures within one run):
//   magic "NTVSHRD1"
//   u32 index, u32 count, u32 host_len, host bytes
//   records: u32 key_len, key bytes, u64 value_count, doubles
constexpr char kMagic[8] = {'N', 'T', 'V', 'S', 'H', 'R', 'D', '1'};

bool write_u32(std::FILE* f, std::uint32_t v) {
  return std::fwrite(&v, sizeof v, 1, f) == 1;
}

bool write_u64(std::FILE* f, std::uint64_t v) {
  return std::fwrite(&v, sizeof v, 1, f) == 1;
}

bool read_u32(std::FILE* f, std::uint32_t* v) {
  return std::fread(v, sizeof *v, 1, f) == 1;
}

bool read_u64(std::FILE* f, std::uint64_t* v) {
  return std::fread(v, sizeof *v, 1, f) == 1;
}

std::string hostname() {
  char buf[256] = {0};
  if (gethostname(buf, sizeof buf - 1) != 0) return "unknown";
  return buf;
}

}  // namespace

ShardSpec& shard() {
  static ShardSpec spec;
  return spec;
}

bool parse_shard(const std::string& text, ShardSpec* out) {
  const std::size_t slash = text.find('/');
  if (slash == std::string::npos || slash + 1 >= text.size()) return false;
  const std::string head = text.substr(0, slash);
  const std::string tail = text.substr(slash + 1);
  char* end = nullptr;
  const long count = std::strtol(tail.c_str(), &end, 10);
  if (end == tail.c_str() || *end != '\0' || count < 1) return false;
  ShardSpec spec;
  spec.count = static_cast<int>(count);
  if (head == "merge") {
    spec.mode = ShardMode::kMerge;
    spec.index = 0;
  } else {
    const long index = std::strtol(head.c_str(), &end, 10);
    if (end == head.c_str() || *end != '\0' || index < 0 || index >= count) {
      return false;
    }
    spec.mode = ShardMode::kWorker;
    spec.index = static_cast<int>(index);
  }
  spec.dir = out->dir;  // --shard-dir may already have been parsed.
  *out = spec;
  return true;
}

std::string shard_tape_path(const std::string& dir, int index, int count) {
  return dir + "/shard_" + std::to_string(index) + "of" +
         std::to_string(count) + ".tape";
}

ShardTapeWriter::ShardTapeWriter(const std::string& dir, int index,
                                 int count)
    : mutex_(new std::mutex) {
  final_path_ = shard_tape_path(dir, index, count);
  tmp_path_ = final_path_ + ".tmp";
  file_ = std::fopen(tmp_path_.c_str(), "wb");
  if (!file_) return;
  const std::string host = hostname();
  if (std::fwrite(kMagic, 1, sizeof kMagic, file_) != sizeof kMagic ||
      !write_u32(file_, static_cast<std::uint32_t>(index)) ||
      !write_u32(file_, static_cast<std::uint32_t>(count)) ||
      !write_u32(file_, static_cast<std::uint32_t>(host.size())) ||
      std::fwrite(host.data(), 1, host.size(), file_) != host.size()) {
    failed_ = true;
  }
}

ShardTapeWriter::~ShardTapeWriter() {
  if (file_) {
    std::fclose(file_);
    std::remove(tmp_path_.c_str());
  }
  delete static_cast<std::mutex*>(mutex_);
}

bool ShardTapeWriter::put(const std::string& key,
                          std::span<const double> payload) {
  std::lock_guard<std::mutex> lock(*static_cast<std::mutex*>(mutex_));
  if (!file_ || failed_) return false;
  if (!write_u32(file_, static_cast<std::uint32_t>(key.size())) ||
      std::fwrite(key.data(), 1, key.size(), file_) != key.size() ||
      !write_u64(file_, static_cast<std::uint64_t>(payload.size())) ||
      std::fwrite(payload.data(), sizeof(double), payload.size(), file_) !=
          payload.size()) {
    failed_ = true;
    return false;
  }
  ++records_;
  return true;
}

bool ShardTapeWriter::close() {
  std::lock_guard<std::mutex> lock(*static_cast<std::mutex*>(mutex_));
  if (!file_) return false;
  const bool flushed = std::fflush(file_) == 0;
  std::fclose(file_);
  file_ = nullptr;
  if (failed_ || !flushed) {
    std::remove(tmp_path_.c_str());
    return false;
  }
  // Atomic publish: a tape that exists under its final name is complete.
  if (std::rename(tmp_path_.c_str(), final_path_.c_str()) != 0) {
    std::remove(tmp_path_.c_str());
    return false;
  }
  return true;
}

std::optional<ShardTape> load_shard_tape(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  ShardTape tape;
  char magic[8];
  std::uint32_t index = 0, count = 0, host_len = 0;
  bool ok = std::fread(magic, 1, sizeof magic, f) == sizeof magic &&
            std::memcmp(magic, kMagic, sizeof kMagic) == 0 &&
            read_u32(f, &index) && read_u32(f, &count) &&
            read_u32(f, &host_len) && host_len <= 4096;
  if (ok) {
    tape.meta.index = static_cast<int>(index);
    tape.meta.count = static_cast<int>(count);
    tape.meta.host.resize(host_len);
    ok = std::fread(tape.meta.host.data(), 1, host_len, f) == host_len;
  }
  while (ok) {
    std::uint32_t key_len = 0;
    if (!read_u32(f, &key_len)) break;  // Clean EOF.
    std::string key(key_len, '\0');
    std::uint64_t n = 0;
    ok = key_len <= (1u << 20) &&
         std::fread(key.data(), 1, key_len, f) == key_len && read_u64(f, &n) &&
         n <= (1ull << 32);
    if (!ok) break;
    std::vector<double> payload(static_cast<std::size_t>(n));
    ok = std::fread(payload.data(), sizeof(double), payload.size(), f) ==
         payload.size();
    if (!ok) break;
    tape.records[key] = std::move(payload);
    ++tape.meta.records;
  }
  std::fclose(f);
  if (!ok) return std::nullopt;
  return tape;
}

std::vector<ShardTape> load_shard_tapes(const std::string& dir, int count) {
  std::vector<ShardTape> tapes;
  tapes.reserve(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    auto tape = load_shard_tape(shard_tape_path(dir, k, count));
    if (!tape || tape->meta.index != k || tape->meta.count != count) {
      std::fprintf(stderr,
                   "warning: shard tape %s missing or corrupt; merge "
                   "falls back to local computation\n",
                   shard_tape_path(dir, k, count).c_str());
      return {};
    }
    tapes.push_back(std::move(*tape));
  }
  return tapes;
}

namespace {

// Lazily-built process-global state, resettable so one process can play
// several shard roles in sequence (the scaling bench and the in-process
// determinism tests switch worker -> merge without exec'ing).
std::mutex g_state_mutex;
ShardTapeWriter* g_writer = nullptr;
std::vector<ShardTape>* g_tapes = nullptr;

}  // namespace

ShardTapeWriter* shard_tape() {
  if (!shard_worker()) return nullptr;
  std::lock_guard<std::mutex> lock(g_state_mutex);
  if (!g_writer) {
    g_writer = new ShardTapeWriter(shard().dir, shard().index, shard().count);
  }
  return g_writer;
}

bool close_shard_tape() {
  if (!shard_worker()) return true;
  ShardTapeWriter* writer = shard_tape();
  return writer != nullptr && writer->ok() && writer->close();
}

const std::vector<ShardTape>& shard_tapes() {
  std::lock_guard<std::mutex> lock(g_state_mutex);
  if (!g_tapes) {
    g_tapes = new std::vector<ShardTape>(
        shard_merge() ? load_shard_tapes(shard().dir, shard().count)
                      : std::vector<ShardTape>());
  }
  return *g_tapes;
}

void reset_shard_state() {
  std::lock_guard<std::mutex> lock(g_state_mutex);
  delete g_writer;
  g_writer = nullptr;
  delete g_tapes;
  g_tapes = nullptr;
  shard() = ShardSpec{};
}

std::vector<std::span<const double>> shard_payloads(const std::string& key) {
  const std::vector<ShardTape>& tapes = shard_tapes();
  std::vector<std::span<const double>> payloads;
  payloads.reserve(tapes.size());
  for (const ShardTape& tape : tapes) {
    const auto it = tape.records.find(key);
    if (it == tape.records.end()) {
      if (!payloads.empty()) {
        std::fprintf(stderr,
                     "warning: shard key '%s' present on only some tapes; "
                     "falling back to local computation\n",
                     key.c_str());
      }
      return {};
    }
    payloads.push_back(it->second);
  }
  return payloads;
}

}  // namespace ntv::stats
