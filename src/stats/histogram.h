// Fixed-bin histograms with an ASCII renderer.
//
// The benches use these to print the figure-style delay distributions
// (Figs 1, 3, 5, 6 of the paper) directly to the terminal.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace ntv::stats {

/// Equal-width binning over [lo, hi]; values outside the range are counted
/// in the under/overflow counters, never silently dropped.
class Histogram {
 public:
  /// Creates a histogram with `bins` equal-width bins over [lo, hi].
  /// Precondition: bins >= 1 and lo < hi.
  Histogram(double lo, double hi, std::size_t bins);

  /// Creates a histogram auto-ranged over the sample (min..max padded by
  /// half a bin on each side) and fills it.
  static Histogram auto_range(std::span<const double> data, std::size_t bins);

  void add(double x) noexcept;
  void add_all(std::span<const double> data) noexcept;

  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t underflow() const noexcept { return underflow_; }
  std::size_t overflow() const noexcept { return overflow_; }
  std::size_t total() const noexcept { return total_; }

  double lo() const noexcept { return lo_; }
  double hi() const noexcept { return hi_; }

  /// Center of the given bin.
  double bin_center(std::size_t bin) const;

  /// Largest single-bin count (0 when empty); used for plot scaling.
  std::size_t max_count() const noexcept;

  /// Renders a horizontal ASCII bar chart, one row per bin, at most
  /// `width` characters of bar. Bin labels use `unit` as suffix.
  std::string render(std::size_t width = 60,
                     const std::string& unit = "") const;

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace ntv::stats
