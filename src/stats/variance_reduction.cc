#include "stats/variance_reduction.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "simd/simd.h"
#include "stats/percentile.h"

namespace ntv::stats {

std::string_view to_string(SamplingStrategy strategy) noexcept {
  switch (strategy) {
    case SamplingStrategy::kNaive: return "naive";
    case SamplingStrategy::kStratified: return "stratified";
    case SamplingStrategy::kImportance: return "importance";
    case SamplingStrategy::kQmc: return "qmc";
  }
  return "naive";
}

std::optional<SamplingStrategy> parse_strategy(
    std::string_view name) noexcept {
  if (name == "naive") return SamplingStrategy::kNaive;
  if (name == "stratified") return SamplingStrategy::kStratified;
  if (name == "importance") return SamplingStrategy::kImportance;
  if (name == "qmc") return SamplingStrategy::kQmc;
  return std::nullopt;
}

namespace {

/// Primitive polynomial + initial direction numbers for Sobol dimensions
/// 2..12 (dimension 1 is the van der Corput sequence and needs neither),
/// from the Joe & Kuo "new-joe-kuo-6" table. Every m_i is odd and below
/// 2^i, which is what guarantees per-dimension base-2 stratification.
struct SobolDim {
  int degree;
  std::uint32_t poly;  ///< Interior coefficients a_1..a_{s-1} as bits.
  std::uint32_t m[7];  ///< Initial m_1..m_degree.
};
constexpr SobolDim kSobolDims[ScrambledSobol::kDims - 1] = {
    {1, 0, {1}},
    {2, 1, {1, 3}},
    {3, 1, {1, 3, 1}},
    {3, 2, {1, 1, 1}},
    {4, 1, {1, 1, 3, 3}},
    {4, 4, {1, 3, 5, 13}},
    {5, 2, {1, 1, 5, 5, 17}},
    {5, 4, {1, 1, 5, 5, 5}},
    {5, 7, {1, 1, 7, 11, 19}},
    {5, 11, {1, 1, 5, 1, 1}},
    {5, 13, {1, 1, 1, 3, 11}},
};

}  // namespace

ScrambledSobol::ScrambledSobol(std::uint64_t seed) {
  // Dimension 0: van der Corput, V_k = 2^(32-k).
  for (int k = 0; k < 32; ++k) {
    direction_[0][k] = 1u << (31 - k);
  }
  for (int d = 1; d < kDims; ++d) {
    const SobolDim& dim = kSobolDims[d - 1];
    const int s = dim.degree;
    std::uint32_t m[33];
    for (int k = 1; k <= s; ++k) m[k] = dim.m[k - 1];
    // Joe-Kuo recurrence for the remaining direction integers.
    for (int k = s + 1; k <= 32; ++k) {
      m[k] = m[k - s] ^ (m[k - s] << s);
      for (int i = 1; i < s; ++i) {
        if ((dim.poly >> (s - 1 - i)) & 1u) m[k] ^= m[k - i] << i;
      }
    }
    for (int k = 1; k <= 32; ++k) {
      direction_[d][k - 1] = m[k] << (32 - k);
    }
  }
  // One digital-shift mask per dimension: XORing a fixed mask into every
  // point is a measure-preserving bijection of [0,1)^kDims that keeps all
  // base-2 equidistribution properties, so the scrambled set integrates
  // means without bias over the random shift.
  SplitMix64 mixer(seed ^ 0x50B0150B015EEDULL);
  for (int d = 0; d < kDims; ++d) {
    shift_[d] = static_cast<std::uint32_t>(mixer.next() >> 32);
  }
}

double ScrambledSobol::point(std::uint64_t index, int dim) const noexcept {
  // Binary-expansion Sobol (XOR of direction numbers over set index
  // bits). This enumerates the same point set as the Gray-code generator
  // for any power-of-two prefix, just in a different order, and gives
  // O(popcount) random access — which is what keeps parallel Monte Carlo
  // blocks deterministic for any worker count.
  std::uint32_t x = shift_[dim];
  const std::uint32_t* v = direction_[dim];
  std::uint64_t bits = index;
  for (int b = 0; bits != 0 && b < 32; ++b, bits >>= 1) {
    if (bits & 1u) x ^= v[b];
  }
  return static_cast<double>(x) * 0x1p-32;
}

namespace {

constexpr int kLadder = SamplingPlan::kTiltLadder;
static_assert(kLadder == 4,
              "the count_ge4 SIMD kernel counts against exactly 4 knots");

/// Rung knots and tilted slow-piece probabilities for a row of dimension
/// `dim`. Shared by the row and block planners so both apply bit-equal
/// transforms; the estimator math is documented at the kImportance branch
/// of plan_row_uniforms.
struct TiltLadder {
  double w_total = 0.0;
  double q0[kLadder];  ///< Naive probability of the slow piece [c_k, 1).
  double q[kLadder];   ///< Tilted probability of the slow piece.
  double ck[kLadder];  ///< Knot of rung k.
};

TiltLadder make_tilt_ladder(const SamplingPlan& plan, double dim) {
  // Tail probabilities geometrically spaced around 1 - tilt_knot, widest
  // rung first (q0 descending => knots c_k ascending).
  static constexpr double kKnotSpread[kLadder] = {6.0, 2.4, 1.0, 0.3};
  TiltLadder t;
  t.w_total = std::clamp(plan.tilt_weight, 0.0, 0.95);
  const double q_center = std::clamp(1.0 - plan.tilt_knot, 1e-4, 0.5);
  const double z = std::max(plan.tilt_power, 0.0);
  for (int k = 0; k < kLadder; ++k) {
    t.q0[k] = std::min(q_center * kKnotSpread[k], 0.45);
    t.ck[k] = 1.0 - t.q0[k];
    const double rho =
        1.0 + z * std::sqrt((1.0 - t.q0[k]) / (dim * t.q0[k]));
    t.q[k] = std::min(rho * t.q0[k], 0.5 * (1.0 + t.q0[k]));
  }
  return t;
}

/// Deterministic stratified allocation of rows to mixture components:
/// row i owns selector position s_i = (i + 0.5)/n, components own
/// consecutive s-intervals (rungs first, the defensive naive block
/// last). Returns the rung index, or -1 for the naive block.
int tilt_component(double w_total, std::size_t row, std::size_t nr) {
  const double s =
      (static_cast<double>(row) + 0.5) / static_cast<double>(nr);
  if (s < w_total && w_total > 0.0) {
    return std::min(static_cast<int>(s / (w_total / kLadder)),
                    kLadder - 1);
  }
  return -1;
}

/// Balance-heuristic likelihood-ratio weight of a row from its slow-draw
/// counts m_k = #{u_j >= c_k} (the sufficient statistic of every rung's
/// density). Uses the REALIZED per-component row fractions, so the
/// estimator is exactly unbiased with deterministic sample counts.
double tilt_row_weight(const TiltLadder& t, const std::size_t m[kLadder],
                       double dim, std::size_t nr) {
  const double n_total = static_cast<double>(nr);
  auto below = [nr](double b) {
    // #{i in [0, nr): (i + 0.5)/nr < b}
    const double x = b * static_cast<double>(nr) - 0.5;
    const double cnt = std::ceil(x);
    return static_cast<double>(
        std::clamp(cnt, 0.0, static_cast<double>(nr)));
  };
  // log prod_j g_k(u_j) = m_k log(q_k/q0_k) + (d-m_k) log((1-q_k)/c_k);
  // exp is clamped so deep-tail rows underflow to weight ~0 instead of
  // overflowing g (they carry negligible f-mass anyway).
  double tilted_rows = 0.0;
  double g = 0.0;
  for (int k = 0; k < kLadder; ++k) {
    const double lo =
        t.w_total * static_cast<double>(k) / static_cast<double>(kLadder);
    const double hi = t.w_total * static_cast<double>(k + 1) /
                      static_cast<double>(kLadder);
    const double frac = (below(hi) - below(lo)) / n_total;
    tilted_rows += frac;
    if (frac <= 0.0) continue;
    const double md = static_cast<double>(m[k]);
    const double log_r = md * std::log(t.q[k] / t.q0[k]) +
                         (dim - md) * std::log((1.0 - t.q[k]) / t.ck[k]);
    g += frac * std::exp(std::min(log_r, 700.0));
  }
  g += 1.0 - tilted_rows;  // The defensive naive block.
  return 1.0 / g;
}

}  // namespace

double plan_row_uniforms(const SamplingPlan& plan, Xoshiro256pp& rng,
                         std::size_t row, std::size_t n_rows,
                         std::span<double> u, const ScrambledSobol* qmc) {
  switch (plan.strategy) {
    case SamplingStrategy::kNaive: {
      for (double& x : u) x = rng.uniform();
      return 1.0;
    }
    case SamplingStrategy::kStratified: {
      // Same number of uniform() calls as naive (substream scheduling is
      // unchanged); the primary dimension is remapped into this row's
      // equi-probable stratum [row/n, (row+1)/n).
      for (double& x : u) x = rng.uniform();
      if (!u.empty() && n_rows > 0) {
        u[0] = (static_cast<double>(row) + u[0]) /
               static_cast<double>(n_rows);
      }
      return 1.0;
    }
    case SamplingStrategy::kImportance: {
      // Row-level defensive mixture over a ladder of piecewise-constant
      // tail tilts, one rung per KNOT. Rung k draws every dimension from
      // the two-piece density
      //   g_k(u) = q_k / (1 - c_k)   on [c_k, 1)   (the "slow" piece)
      //          = (1 - q_k) / c_k   on [0, c_k)   (the "fast" piece)
      // i.e. it boosts the per-dimension probability of landing above its
      // knot from q0_k = 1 - c_k to q_k while keeping draws uniform
      // WITHIN each piece. Two design decisions carry the estimator:
      //
      //  1. The row likelihood ratio against the mixture depends on the
      //     row only through its slow-draw counts m_k = #{u_j >= c_k} —
      //     the sufficient statistic the sign-off events are made of. A
      //     chip's delay at alpha spares is its (alpha+1)-th slowest
      //     lane, so {chip in the p99 tail} == {count of lanes above the
      //     sign-off threshold >= alpha+1}: weight and event move
      //     together. Smooth product tilts (Beta(t,1)^d) key their ratio
      //     to sum_j log u_j instead, whose O(sqrt d) noise is
      //     independent of the count, so in 130-260 dimensions proposal
      //     and target barely overlap (docs/SAMPLING.md works both
      //     calculations).
      //  2. The knots form a LADDER spanning the decision band. The
      //     decisive lane quantile is alpha-dependent: the p99 chip at
      //     alpha spares has ~binomial count >= alpha+1 above u* where
      //     d*(1-u*) + z99*sqrt(d*(1-u*)*u*) ~ alpha+1, which puts u*
      //     near 0.70 for alpha ~ 75 and near 0.997 for alpha ~ 2. A
      //     single-knot tilt serves one alpha band and injects pure
      //     weight noise everywhere else; geometrically spaced knots
      //     cover the whole sweep. Each rung's boost is self-tuned from
      //     the row dimension d so its mean count shifts by tilt_power
      //     standard deviations — the z-scale of the p99 event itself.
      //
      // Weights stay in (0, 1/(1-w)]: bounded above by the defensive
      // naive component, and decreasing in the counts — exactly the
      // proper-IS correlation.
      const double dim = std::max<double>(u.size(), 1);
      const TiltLadder t = make_tilt_ladder(plan, dim);
      const std::size_t nr = std::max<std::size_t>(n_rows, 1);
      const int comp = tilt_component(t.w_total, row, nr);
      if (comp < 0) {
        for (double& x : u) x = rng.uniform();
      } else {
        const double qc = t.q[comp];
        const double q0c = t.q0[comp];
        const double cc = t.ck[comp];
        for (double& x : u) {
          const double r = rng.uniform();
          x = r < qc ? cc + q0c * (r / qc) : cc * (r - qc) / (1.0 - qc);
        }
      }
      // Slow-draw counts against every knot (each rung's density of THIS
      // row is needed for the mixture, whichever rung drew it).
      std::size_t m[kLadder] = {};
      for (const double x : u) {
        for (int k = 0; k < kLadder; ++k) m[k] += x >= t.ck[k];
      }
      return tilt_row_weight(t, m, dim, nr);
    }
    case SamplingStrategy::kQmc: {
      for (std::size_t j = 0; j < u.size(); ++j) {
        // Hybrid padding: true Sobol coordinates for the first kDims
        // dimensions, the pseudorandom stream beyond them.
        u[j] = j < static_cast<std::size_t>(ScrambledSobol::kDims)
                   ? qmc->point(row, static_cast<int>(j))
                   : rng.uniform();
      }
      return 1.0;
    }
  }
  return 1.0;
}

void plan_block_uniforms(const SamplingPlan& plan, Xoshiro256ppX4& rng,
                         std::size_t lo, std::size_t hi, std::size_t n_rows,
                         std::size_t width, std::vector<double>& u,
                         double* weights, const ScrambledSobol* qmc) {
  const std::size_t rows = hi - lo;
  const std::size_t total = rows * width;
  // fill_uniform4 produces four lanes per step; the (deterministic) pad
  // draws beyond `total` are part of the block's stream contract.
  const std::size_t padded = (total + 3) & ~std::size_t{3};
  if (u.size() < padded) u.resize(padded);
  rng.fill_uniform(u.data(), padded);
  if (weights != nullptr) std::fill(weights, weights + rows, 1.0);
  switch (plan.strategy) {
    case SamplingStrategy::kNaive:
      break;
    case SamplingStrategy::kStratified: {
      if (width == 0 || n_rows == 0) break;
      for (std::size_t r = lo; r < hi; ++r) {
        double& u0 = u[(r - lo) * width];
        u0 = (static_cast<double>(r) + u0) / static_cast<double>(n_rows);
      }
      break;
    }
    case SamplingStrategy::kImportance: {
      const double dim = std::max<double>(width, 1);
      const TiltLadder t = make_tilt_ladder(plan, dim);
      const std::size_t nr = std::max<std::size_t>(n_rows, 1);
      for (std::size_t r = lo; r < hi; ++r) {
        double* row_u = u.data() + (r - lo) * width;
        const int comp = tilt_component(t.w_total, r, nr);
        if (comp >= 0) {
          const double qc = t.q[comp];
          const double q0c = t.q0[comp];
          const double cc = t.ck[comp];
          for (std::size_t j = 0; j < width; ++j) {
            const double rr = row_u[j];
            row_u[j] = rr < qc ? cc + q0c * (rr / qc)
                               : cc * (rr - qc) / (1.0 - qc);
          }
        }
        if (weights != nullptr) {
          // Slow-draw counts against the full knot ladder, via the wide
          // kernel (comparisons are exact, so backends agree bit for bit).
          std::size_t m[kLadder] = {};
          simd::kernels().count_ge4(row_u, width, t.ck, m);
          weights[r - lo] = tilt_row_weight(t, m, dim, nr);
        }
      }
      break;
    }
    case SamplingStrategy::kQmc: {
      // Positional overwrite of the Sobol dimensions (the displaced X4
      // draws are deterministic, so the stream contract holds).
      const std::size_t dims =
          std::min<std::size_t>(ScrambledSobol::kDims, width);
      for (std::size_t r = lo; r < hi; ++r) {
        double* row_u = u.data() + (r - lo) * width;
        for (std::size_t j = 0; j < dims; ++j) {
          row_u[j] = qmc->point(r, static_cast<int>(j));
        }
      }
      break;
    }
  }
}

WeightedSamples monte_carlo_planned(
    std::size_t n, std::size_t draws_per_sample, const SamplingPlan& plan,
    const std::function<double(Xoshiro256pp&, std::span<const double>)>&
        transform,
    const MonteCarloOptions& opt) {
  WeightedSamples out;
  if (plan.is_weighted()) out.weights.assign(n, 1.0);
  double* weights = out.weights.empty() ? nullptr : out.weights.data();
  std::optional<ScrambledSobol> sobol;
  if (plan.strategy == SamplingStrategy::kQmc) sobol.emplace(opt.seed);
  const ScrambledSobol* qmc = sobol ? &*sobol : nullptr;

  out.values = monte_carlo_rows(
      n, 1,
      [&plan, &transform, draws_per_sample, n, weights, qmc](
          Xoshiro256pp& rng, std::size_t row, double* slot) {
        thread_local std::vector<double> u;
        if (u.size() < draws_per_sample) u.resize(draws_per_sample);
        const double w = plan_row_uniforms(
            plan, rng, row, n,
            std::span<double>(u.data(), draws_per_sample), qmc);
        if (weights != nullptr) weights[row] = w;
        slot[0] = transform(
            rng, std::span<const double>(u.data(), draws_per_sample));
      },
      opt);
  return out;
}

double WeightedSamples::ess() const {
  if (weights.empty()) return static_cast<double>(values.size());
  return effective_sample_size(weights);
}

double effective_sample_size(std::span<const double> weights) {
  // Four-lane kernel accumulation: the (a0+a1)+(a2+a3) association is
  // the canonical one, identical on every backend.
  double sums[3] = {0.0, 0.0, 0.0};
  simd::kernels().weighted_sums(nullptr, weights.data(), weights.size(),
                                sums);
  if (sums[1] <= 0.0) return 0.0;
  return sums[0] * sums[0] / sums[1];
}

double weighted_mean(std::span<const double> values,
                     std::span<const double> weights) {
  if (weights.empty()) {
    const double n = static_cast<double>(values.size());
    return n > 0.0 ? std::reduce(values.begin(), values.end()) / n : 0.0;
  }
  if (weights.size() != values.size())
    throw std::invalid_argument("weighted_mean: size mismatch");
  double sums[3] = {0.0, 0.0, 0.0};
  simd::kernels().weighted_sums(values.data(), weights.data(),
                                values.size(), sums);
  if (sums[0] <= 0.0)
    throw std::invalid_argument("weighted_mean: non-positive weight sum");
  return sums[2] / sums[0];
}

double weighted_mean_ci_halfwidth(std::span<const double> values,
                                  std::span<const double> weights,
                                  double z) {
  if (values.empty()) return 0.0;
  const double mean = weighted_mean(values, weights);
  double var_num = 0.0, den = 0.0;
  if (weights.empty()) {
    for (double x : values) var_num += (x - mean) * (x - mean);
    den = static_cast<double>(values.size());
  } else {
    for (std::size_t i = 0; i < values.size(); ++i) {
      var_num += weights[i] * (values[i] - mean) * (values[i] - mean);
      den += weights[i];
    }
  }
  const double variance = den > 0.0 ? var_num / den : 0.0;
  const double ess = weights.empty() ? static_cast<double>(values.size())
                                     : effective_sample_size(weights);
  if (ess <= 0.0) return 0.0;
  return z * std::sqrt(variance / ess);
}

double weighted_percentile(std::span<const double> values,
                           std::span<const double> weights, double p) {
  if (values.empty())
    throw std::invalid_argument("weighted_percentile: empty sample");
  if (weights.empty()) return percentile(values, p);
  if (weights.size() != values.size())
    throw std::invalid_argument("weighted_percentile: size mismatch");
  const std::size_t n = values.size();
  if (n == 1) return values.front();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return values[a] < values[b];
  });

  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0)
      throw std::invalid_argument("weighted_percentile: negative weight");
    total += w;
  }
  if (total <= 0.0)
    throw std::invalid_argument(
        "weighted_percentile: non-positive weight sum");

  // Sorted element k sits at ECDF position pos_k = S_{k-1} / (W - w_k)
  // (S_{k-1} = weight mass strictly below it). For equal weights this is
  // exactly k/(n-1) — the type-7 plotting position of stats::percentile —
  // and it is non-decreasing for any non-negative weights:
  //   S_k (W - w_k) - S_{k-1} (W - w_{k+1})
  //     = w_k (W - S_k) + S_{k-1} w_{k+1} >= 0.
  const double target = std::clamp(p, 0.0, 100.0) / 100.0;
  double below = 0.0;       // S_{k-1}
  double prev_pos = 0.0;
  double prev_val = values[order[0]];
  for (std::size_t k = 0; k < n; ++k) {
    const double w = weights[order[k]];
    const double denom = total - w;
    const double pos =
        denom > 0.0 ? std::min(below / denom, 1.0) : (below > 0.0 ? 1.0 : 0.0);
    const double val = values[order[k]];
    if (pos >= target) {
      if (k == 0 || pos <= prev_pos) return val;
      const double frac = (target - prev_pos) / (pos - prev_pos);
      return prev_val + frac * (val - prev_val);
    }
    prev_pos = pos;
    prev_val = val;
    below += w;
  }
  return values[order[n - 1]];
}

QuantileCi weighted_percentile_ci(std::span<const double> values,
                                  std::span<const double> weights, double p,
                                  double z) {
  QuantileCi ci;
  ci.estimate = weighted_percentile(values, weights, p);
  const double ess = weights.empty()
                         ? static_cast<double>(values.size())
                         : effective_sample_size(weights);
  if (ess <= 1.0) {
    ci.lo = ci.hi = ci.estimate;
    return ci;
  }
  const double p01 = std::clamp(p, 0.0, 100.0) / 100.0;
  const double se = std::sqrt(p01 * (1.0 - p01) / ess);
  ci.lo = weighted_percentile(values, weights,
                              100.0 * std::clamp(p01 - z * se, 0.0, 1.0));
  ci.hi = weighted_percentile(values, weights,
                              100.0 * std::clamp(p01 + z * se, 0.0, 1.0));
  return ci;
}

}  // namespace ntv::stats
