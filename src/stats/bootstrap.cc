#include "stats/bootstrap.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "stats/monte_carlo.h"
#include "stats/percentile.h"
#include "stats/rng.h"

namespace ntv::stats {

ConfidenceInterval bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    double confidence, int resamples, std::uint64_t seed) {
  if (sample.empty())
    throw std::invalid_argument("bootstrap_ci: empty sample");
  if (!(confidence > 0.0) || !(confidence < 1.0))
    throw std::invalid_argument("bootstrap_ci: confidence in (0,1)");
  if (resamples < 10)
    throw std::invalid_argument("bootstrap_ci: need >= 10 resamples");

  ConfidenceInterval ci;
  ci.point = statistic(sample);

  // Each replicate is one Monte Carlo sample: resample with replacement
  // from its own substream, evaluate the statistic. Running through
  // monte_carlo gives the replicates the pool's parallelism and the
  // substream determinism contract (byte-identical for any worker count).
  std::vector<double> stats = monte_carlo(
      static_cast<std::size_t>(resamples),
      [&](Xoshiro256pp& rng) {
        thread_local std::vector<double> resample;
        resample.resize(sample.size());
        for (auto& x : resample) {
          x = sample[rng.bounded(sample.size())];
        }
        return statistic(resample);
      },
      MonteCarloOptions{.seed = seed});
  const double alpha = (1.0 - confidence) / 2.0;
  ci.lo = percentile(stats, 100.0 * alpha);
  ci.hi = percentile(stats, 100.0 * (1.0 - alpha));
  return ci;
}

ConfidenceInterval bootstrap_percentile_ci(std::span<const double> sample,
                                           double p, double confidence,
                                           int resamples,
                                           std::uint64_t seed) {
  return bootstrap_ci(
      sample,
      [p](std::span<const double> s) { return percentile(s, p); },
      confidence, resamples, seed);
}

}  // namespace ntv::stats
