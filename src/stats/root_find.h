// Scalar root finding and minimization used by the calibration fitter and
// the voltage-margin solver.
#pragma once

#include <functional>

namespace ntv::stats {

/// Options for bracketing root finders.
struct RootOptions {
  double x_tol = 1e-12;   ///< Stop when the bracket is this narrow.
  double f_tol = 0.0;     ///< Stop when |f| falls below this.
  int max_iter = 200;     ///< Hard iteration cap.
};

/// Result of a root search.
struct RootResult {
  double x = 0.0;        ///< Best abscissa found.
  double f = 0.0;        ///< Function value at x.
  int iterations = 0;    ///< Iterations consumed.
  bool converged = false;
};

/// Bisection on [lo, hi]. Requires f(lo) and f(hi) to have opposite signs
/// (throws std::invalid_argument otherwise). Robust and deterministic.
RootResult bisect(const std::function<double(double)>& f, double lo,
                  double hi, const RootOptions& opt = {});

/// Brent's method on [lo, hi]: bisection safety with superlinear speed.
/// Requires a sign change like `bisect`.
RootResult brent(const std::function<double(double)>& f, double lo, double hi,
                 const RootOptions& opt = {});

/// Golden-section minimization of a unimodal f on [lo, hi].
RootResult golden_min(const std::function<double(double)>& f, double lo,
                      double hi, const RootOptions& opt = {});

/// Finds the smallest integer n in [lo, hi] with pred(n) true, assuming
/// pred is monotone (false..false,true..true). Returns hi+1 if none.
/// Used by the duplication solver ("fewest spares meeting the target").
long smallest_true(const std::function<bool(long)>& pred, long lo, long hi);

}  // namespace ntv::stats
