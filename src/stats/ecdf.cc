#include "stats/ecdf.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ntv::stats {

Ecdf::Ecdf(std::span<const double> data)
    : sorted_(data.begin(), data.end()) {
  if (sorted_.empty()) throw std::invalid_argument("Ecdf: empty sample");
  std::sort(sorted_.begin(), sorted_.end());
}

double Ecdf::operator()(double x) const noexcept {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::quantile(double q) const {
  if (!(q > 0.0) || q > 1.0)
    throw std::invalid_argument("Ecdf::quantile: q must be in (0, 1]");
  const auto n = static_cast<double>(sorted_.size());
  auto idx = static_cast<std::size_t>(std::ceil(q * n)) - 1;
  idx = std::min(idx, sorted_.size() - 1);
  return sorted_[idx];
}

double Ecdf::ks_statistic(const Ecdf& a, const Ecdf& b) {
  double d = 0.0;
  for (double x : a.sorted_) d = std::max(d, std::abs(a(x) - b(x)));
  for (double x : b.sorted_) d = std::max(d, std::abs(a(x) - b(x)));
  return d;
}

}  // namespace ntv::stats
