// Process-level Monte Carlo sharding: deterministic block partitioning
// plus the shard tape that carries per-shard summaries to the merger.
//
// One experiment's MC budget is split across N worker processes by
// partitioning the fixed-size substream blocks of monte_carlo_blocks
// (stats/monte_carlo.h): worker k fills exactly the blocks it owns and
// leaves the rest untouched, so the union of all workers' rows is the
// byte-identical unsharded sample set (every block re-derives its RNG
// from (seed, block) alone). Workers condense their rows into mergeable
// summaries (stats/merge.h) and append them to a shard tape; a final
// merge process unions the tapes and reproduces the unsharded report
// bit for bit (docs/SHARDING.md).
//
// The shard state is process-global (like the thread pool and the SIMD
// backend): a worker subprocess is a worker for its whole lifetime.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ntv::stats {

/// Role of this process in a sharded run.
enum class ShardMode {
  kOff = 0,  ///< Normal single-process run (the default).
  kWorker,   ///< Fill only owned blocks, write summaries to the tape.
  kMerge,    ///< Union the worker tapes into the final report.
};

/// Process-global shard configuration (set once at startup by
/// `--shard` / `--shard-dir`, before any Monte Carlo runs).
struct ShardSpec {
  ShardMode mode = ShardMode::kOff;
  int index = 0;    ///< Worker index in [0, count); 0 for merge.
  int count = 1;    ///< Total worker count N.
  std::string dir;  ///< Directory holding the shard tapes.
};

/// Mutable access to the process-global shard spec.
ShardSpec& shard();

inline bool shard_worker() { return shard().mode == ShardMode::kWorker; }
inline bool shard_merge() { return shard().mode == ShardMode::kMerge; }

/// Ownership granularity in monte_carlo_blocks blocks. Two consecutive
/// 64-row blocks form one ownership group so a 128-chip prefix-curve
/// tile (core/mitigation.cc) is always wholly owned or wholly skipped —
/// workers then skip curve extraction at the same 1/N rate as the fill.
inline constexpr std::size_t kShardBlockGroup = 2;

/// True when this process fills substream block `b`: always, except in
/// worker mode, where block groups are dealt round-robin over workers.
/// The partition is a pure function of (b, index, count) — no state —
/// so any worker set covering [0, N) reproduces the full sample set.
inline bool shard_owns_block(std::size_t b) {
  const ShardSpec& s = shard();
  if (s.mode != ShardMode::kWorker) return true;
  return (b / kShardBlockGroup) % static_cast<std::size_t>(s.count) ==
         static_cast<std::size_t>(s.index);
}

/// Parses a `--shard` value: "k/N" (worker k of N) or "merge/N".
/// Returns false on malformed input, k >= N, or N < 1.
bool parse_shard(const std::string& text, ShardSpec* out);

/// Tape path for worker `index` of `count` under `dir`.
std::string shard_tape_path(const std::string& dir, int index, int count);

/// Per-tape provenance recorded in the tape header and surfaced in the
/// merged report's manifest (docs/SHARDING.md).
struct ShardTapeMeta {
  int index = 0;
  int count = 1;
  std::string host;           ///< Producing machine (gethostname).
  std::uint64_t records = 0;  ///< Keyed summaries on the tape.
};

/// Append-only writer for one worker's tape. Records are (key, payload)
/// pairs; payloads are raw double vectors whose layout is owned by the
/// producer (stats/merge.h serializers). The tape is written to a
/// temporary name and atomically renamed on `close()`, so a tape that
/// exists is complete — a crashed worker leaves no torn tape behind.
/// `put` is thread-safe (summaries are produced inside parallel sweeps).
class ShardTapeWriter {
 public:
  /// Opens the temporary tape file and writes the header. Check `ok()`.
  ShardTapeWriter(const std::string& dir, int index, int count);
  ~ShardTapeWriter();
  ShardTapeWriter(const ShardTapeWriter&) = delete;
  ShardTapeWriter& operator=(const ShardTapeWriter&) = delete;

  bool ok() const noexcept { return file_ != nullptr; }

  /// Appends one keyed payload. Returns false on IO failure.
  bool put(const std::string& key, std::span<const double> payload);

  /// Flushes and renames the tape to its final name. Returns false when
  /// any put failed or the rename fails; the temporary file is removed.
  bool close();

  std::uint64_t records() const noexcept { return records_; }

 private:
  std::FILE* file_ = nullptr;
  std::string tmp_path_;
  std::string final_path_;
  std::uint64_t records_ = 0;
  bool failed_ = false;
  void* mutex_;  // std::mutex kept out of the header (pimpl-lite).
};

/// One worker's tape, fully loaded: header meta plus keyed payloads.
struct ShardTape {
  ShardTapeMeta meta;
  std::map<std::string, std::vector<double>> records;
};

/// Loads one tape. Returns nullopt on a missing file, a bad magic or
/// version, or a truncated record (a tape is all-or-nothing).
std::optional<ShardTape> load_shard_tape(const std::string& path);

/// Loads all `count` worker tapes under `dir`. Returns an empty vector
/// when any tape is missing or corrupt — the merger then falls back to
/// computing locally, which is slower but always correct.
std::vector<ShardTape> load_shard_tapes(const std::string& dir, int count);

/// The process-global tape writer of a worker (lazily opened under
/// shard().dir on first use). Null outside worker mode.
ShardTapeWriter* shard_tape();

/// Closes (atomically publishes) the worker's tape; true on success or
/// when no tape was ever opened. Called once at process shutdown.
bool close_shard_tape();

/// The loaded worker tapes of a merge process (lazily loaded from
/// shard().dir on first use; empty outside merge mode or on load
/// failure). Merge-side consumers look their keys up here and fall back
/// to local computation on a miss.
const std::vector<ShardTape>& shard_tapes();

/// Drops the lazy writer (without publishing) and the loaded tape cache,
/// and resets `shard()` to the default off-mode spec. Lets one process
/// play several shard roles in sequence (scaling bench, in-process
/// tests); a normal worker/merge subprocess never needs it.
void reset_shard_state();

/// Convenience lookup: the payloads stored under `key`, one entry per
/// worker tape that has it. Empty when not in merge mode or no tape has
/// the key. A key present on only SOME tapes is a contract violation
/// (workers disagreed on the call pattern) and also returns empty.
std::vector<std::span<const double>> shard_payloads(const std::string& key);

}  // namespace ntv::stats
