// Process-wide memoization of calibrated delay distributions.
//
// Building a gate/chain GridDistribution is the expensive deterministic
// prefix of every experiment: a 2-D quadrature over (dVth, eps) followed
// by FFT convolution powers. Sweeps used to recompute it once per study
// instance per (node, Vdd) — a 4-node x 5-voltage table rebuilt identical
// distributions dozens of times across benches, solvers and the CLI. This
// cache keys the three builders on every input that affects the result
// (node card, calibrated sigmas, Vdd, chain length, grid options) and
// shares one immutable copy process-wide.
//
// Thread-safe: concurrent sweeps on the shared pool may request the same
// key; it is built exactly once (KeyedOnceCache — the builders are serial,
// so blocking waiters cannot deadlock the pool). Entries are shared_ptr,
// so holders (e.g. a ChipDelaySampler) stay valid across clear().
//
// Metrics: "device.dist_cache.calls" / "device.dist_cache.builds"
// counters and a "device.dist_cache.entries" gauge.
#pragma once

#include <memory>

#include "device/gate_table.h"

namespace ntv::device {

/// Cached build_gate_distribution(model, vdd, opt).
std::shared_ptr<const stats::GridDistribution> cached_gate_distribution(
    const VariationModel& model, double vdd,
    const DistributionOptions& opt = {});

/// Cached build_chain_distribution(model, vdd, n_stages, opt).
std::shared_ptr<const stats::GridDistribution> cached_chain_distribution(
    const VariationModel& model, double vdd, int n_stages,
    const DistributionOptions& opt = {});

/// Cached build_total_chain_distribution(model, vdd, n_stages, opt).
std::shared_ptr<const stats::GridDistribution>
cached_total_chain_distribution(const VariationModel& model, double vdd,
                                int n_stages,
                                const DistributionOptions& opt = {});

/// Cached lane-delay distribution: max_of_iid(paths_per_lane) over the
/// cached total-chain (include_systematic == true) or chain
/// (include_systematic == false) distribution. Sampling one lane is one
/// inverse-CDF draw from this distribution — the per-sample
/// u^(1/paths) pow of max_quantile is paid ONCE here, at build time, as
/// the F^k convolution of the CDF. Quantile values differ from
/// max_quantile only by interpolating the F^k grid directly (same grid
/// index, sub-cell interpolation), well inside the sweep tolerances.
std::shared_ptr<const stats::GridDistribution> cached_lane_distribution(
    const VariationModel& model, double vdd, int n_stages,
    int paths_per_lane, bool include_systematic,
    const DistributionOptions& opt = {});

/// Number of distributions currently cached.
std::size_t distribution_cache_size();

/// Drops every cached distribution (outstanding shared_ptr holders keep
/// their copies alive). For tests and memory-pressure lifecycle points.
void clear_distribution_cache();

}  // namespace ntv::device
