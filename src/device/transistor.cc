#include "device/transistor.h"

#include <cmath>

namespace ntv::device {

double softplus(double x) noexcept {
  // ln(1+e^x) = x + ln(1+e^-x) for large x; avoids overflow both ways.
  if (x > 30.0) return x;
  if (x < -30.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

double sigmoid(double x) noexcept {
  if (x >= 0.0) {
    const double e = std::exp(-x);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(x);
  return e / (1.0 + e);
}

TransistorModel::TransistorModel(const TechNode& node) noexcept
    : node_(&node),
      two_n_vt_(2.0 * node.n_slope * kThermalVoltage) {}

double TransistorModel::ion(double vdd, double vth) const noexcept {
  const double x = (vdd - vth) / two_n_vt_;
  return std::pow(softplus(x), node_->alpha);
}

double TransistorModel::dlnion_dvth(double vdd, double vth) const noexcept {
  const double x = (vdd - vth) / two_n_vt_;
  const double sp = softplus(x);
  if (sp <= 0.0) return 0.0;
  // d ln I / d vth = alpha * d ln softplus(x)/dx * dx/dvth
  //                = -alpha * sigmoid(x) / softplus(x) / (2 n vT).
  return -node_->alpha * sigmoid(x) / sp / two_n_vt_;
}

double TransistorModel::ioff(double vdd) const noexcept {
  // Gate at 0: effective overdrive is -vth0; DIBL lowers the barrier
  // slightly with vdd (eta ~ 0.1 V/V).
  constexpr double kDibl = 0.1;
  const double x = (-node_->vth0 + kDibl * vdd) / two_n_vt_;
  return std::pow(softplus(x), node_->alpha);
}

}  // namespace ntv::device
