#include "device/gate_table.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "stats/normal.h"

namespace ntv::device {

stats::GridDistribution build_gate_distribution(
    const VariationModel& model, double vdd, const DistributionOptions& opt) {
  if (opt.bins < 8 || opt.vth_points < 3 || opt.mult_points < 3)
    throw std::invalid_argument("build_gate_distribution: resolution too low");

  const auto& p = model.params();
  const auto& gm = model.gate_model();
  const double sv = p.sigma_vth_rand;
  const double sm = p.sigma_mult_rand;
  const double z = opt.z_span;

  // Delay is monotone increasing in both dVth and eps, so the support over
  // the truncated +-z sigma box is spanned by the two corners.
  const double d_min = gm.delay(vdd, -z * sv, -z * sm);
  const double d_max = gm.delay(vdd, +z * sv, +z * sm);
  const double lo = d_min;
  const double step =
      (d_max - d_min) / static_cast<double>(opt.bins - 1);

  std::vector<double> pmf(opt.bins, 0.0);
  auto deposit = [&](double delay, double weight) {
    double pos = (delay - lo) / step;
    // Clamp to the grid: floating-point round-off can land a corner value
    // epsilon outside [0, bins-1].
    pos = std::clamp(pos, 0.0, static_cast<double>(opt.bins - 1));
    auto idx = static_cast<std::size_t>(pos);
    if (idx >= opt.bins - 1) idx = opt.bins - 2;
    const double frac = std::clamp(pos - static_cast<double>(idx), 0.0, 1.0);
    pmf[idx] += weight * (1.0 - frac);
    pmf[idx + 1] += weight * frac;
  };

  // Tensor-product trapezoid quadrature with normal weights. The grids are
  // in standardized units; weights renormalize inside GridDistribution, so
  // the constant factors of the normal pdf are irrelevant.
  const std::size_t nv = opt.vth_points;
  const std::size_t nm = opt.mult_points;
  const double hv = 2.0 * z / static_cast<double>(nv - 1);
  const double hm = 2.0 * z / static_cast<double>(nm - 1);

  std::vector<double> wv(nv), zv(nv);
  for (std::size_t i = 0; i < nv; ++i) {
    zv[i] = -z + hv * static_cast<double>(i);
    wv[i] = stats::normal_pdf(zv[i]) * ((i == 0 || i == nv - 1) ? 0.5 : 1.0);
  }
  std::vector<double> wm(nm), zm(nm);
  for (std::size_t j = 0; j < nm; ++j) {
    zm[j] = -z + hm * static_cast<double>(j);
    wm[j] = stats::normal_pdf(zm[j]) * ((j == 0 || j == nm - 1) ? 0.5 : 1.0);
  }

  for (std::size_t i = 0; i < nv; ++i) {
    // delay(dvth, eps) = base(dvth) * (1 + eps): hoist the expensive part.
    const double base = gm.delay(vdd, zv[i] * sv, 0.0);
    for (std::size_t j = 0; j < nm; ++j) {
      deposit(base * (1.0 + zm[j] * sm), wv[i] * wm[j]);
    }
  }

  return stats::GridDistribution(lo, step, std::move(pmf));
}

stats::GridDistribution build_chain_distribution(
    const VariationModel& model, double vdd, int n_stages,
    const DistributionOptions& opt) {
  return build_gate_distribution(model, vdd, opt).sum_of_iid(n_stages);
}

stats::GridDistribution build_total_chain_distribution(
    const VariationModel& model, double vdd, int n_stages,
    const DistributionOptions& opt) {
  const stats::GridDistribution chain =
      build_chain_distribution(model, vdd, n_stages, opt);

  // Die factor S = exp(g*Z)*(1+W), Z~N(0,svs), W~N(0,sms). First order in
  // the small spread: X*S ~ X + mu_X*(S-1), an additive Gaussian with
  //   mean  mu_X*(E[S]-1),  sigma  mu_X*stddev(S).
  const auto& p = model.params();
  const double g = model.gate_model().sensitivity(vdd);
  const double a = g * p.sigma_vth_sys;
  const double es = std::exp(0.5 * a * a);
  const double es2 =
      std::exp(2.0 * a * a) * (1.0 + p.sigma_mult_sys * p.sigma_mult_sys);
  const double sd_s = std::sqrt(std::max(es2 - es * es, 0.0));

  const double mean_k = chain.mean() * (es - 1.0);
  const double sigma_k = chain.mean() * sd_s;
  const double step = chain.step();
  if (sigma_k < step) {
    // Systematic spread below grid resolution: a pure shift suffices.
    return stats::GridDistribution(chain.lo() + mean_k, step, chain.pmf());
  }

  const double span = opt.z_span * sigma_k;
  const auto kernel_bins =
      static_cast<std::size_t>(std::ceil(2.0 * span / step)) + 1;
  std::vector<double> kernel(kernel_bins);
  const double k_lo = mean_k - span;
  for (std::size_t i = 0; i < kernel_bins; ++i) {
    const double x = k_lo + step * static_cast<double>(i);
    kernel[i] = stats::normal_pdf((x - mean_k) / sigma_k);
  }
  const stats::GridDistribution sys(k_lo, step, std::move(kernel));
  return stats::GridDistribution::convolve(chain, sys);
}

}  // namespace ntv::device
