#include "device/tech_node.h"

#include <stdexcept>

namespace ntv::device {

namespace {

// Anchor sources:
//  * 90 nm: Fig. 1 of the paper (exact values).
//  * 22 nm: Fig. 2 text ("from 11%@0.8V to 25%@0.5V" for the chain) with
//    single-gate anchors chosen at the 90 nm chain/single ratio.
//  * 45/32 nm: interpolated between the 90 nm and 22 nm trends, consistent
//    with the "~2.5x from 90 nm to 22 nm at 0.55 V" statement and the
//    ordering visible in Fig. 2.
// Current-model parameters grid-fitted against the paper's own 90 nm
// numbers: FO4 delay ratios (22.05 ns / 8.99 ns chain delays at 0.5/0.6 V)
// and the full Fig. 1 variation series. See tools note in DESIGN.md §5.
const TechNode k90 = {
    .name = "90nm GP",
    .nominal_vdd = 1.0,
    .vth0 = 0.39,
    .n_slope = 1.0,
    .alpha = 1.8,
    .fo4_ref_delay = 441.0e-12,  // 50-FO4 chain = 22.05 ns @ 0.5 V (paper).
    .fo4_ref_vdd = 0.5,
    .anchors = {.v_hi = 1.0,
                .single_hi_pct = 15.58,
                .chain_hi_pct = 5.76,
                .v_lo = 0.5,
                .single_lo_pct = 35.49,
                .chain_lo_pct = 9.43,
                // Full Fig. 1 series: all six voltages the paper reports.
                .series = {{1.0, 15.58, 5.76},
                           {0.9, 15.70, 5.84},
                           {0.8, 16.29, 5.96},
                           {0.7, 17.74, 6.17},
                           {0.6, 22.25, 6.81},
                           {0.5, 35.49, 9.43}}},
    .min_vdd = 0.5,
};

const TechNode k45 = {
    .name = "45nm GP",
    .nominal_vdd = 1.0,
    .vth0 = 0.47,
    .n_slope = 1.45,
    .alpha = 1.35,
    .fo4_ref_delay = 28.0e-12,
    .fo4_ref_vdd = 1.0,
    .anchors = {.v_hi = 1.0,
                .single_hi_pct = 17.5,
                .chain_hi_pct = 6.5,
                .v_lo = 0.5,
                .single_lo_pct = 46.0,
                .chain_lo_pct = 15.0,
                .series = {}},
    .min_vdd = 0.5,
};

const TechNode k32 = {
    .name = "32nm PTM HP",
    .nominal_vdd = 0.9,
    .vth0 = 0.49,
    .n_slope = 1.5,
    .alpha = 1.3,
    .fo4_ref_delay = 24.0e-12,
    .fo4_ref_vdd = 0.9,
    .anchors = {.v_hi = 0.9,
                .single_hi_pct = 21.0,
                .chain_hi_pct = 8.0,
                .v_lo = 0.5,
                .single_lo_pct = 52.0,
                .chain_lo_pct = 19.0,
                .series = {}},
    .min_vdd = 0.5,
};

const TechNode k22 = {
    .name = "22nm PTM HP",
    .nominal_vdd = 0.8,
    .vth0 = 0.503,
    .n_slope = 1.5,
    .alpha = 1.25,
    .fo4_ref_delay = 20.0e-12,
    .fo4_ref_vdd = 0.8,
    .anchors = {.v_hi = 0.8,
                .single_hi_pct = 27.0,
                .chain_hi_pct = 11.0,
                .v_lo = 0.5,
                .single_lo_pct = 62.0,
                .chain_lo_pct = 25.0,
                .series = {}},
    .min_vdd = 0.5,
};

const TechNode* const kAll[] = {&k90, &k45, &k32, &k22};

}  // namespace

const TechNode& tech_90nm() { return k90; }
const TechNode& tech_45nm() { return k45; }
const TechNode& tech_32nm() { return k32; }
const TechNode& tech_22nm() { return k22; }

std::span<const TechNode* const> all_nodes() { return kAll; }

const TechNode& node_by_name(std::string_view name) {
  for (const TechNode* node : kAll) {
    if (node->name == name) return *node;
  }
  throw std::out_of_range("node_by_name: unknown node");
}

}  // namespace ntv::device
