// Transregional MOSFET on-current model.
//
// The study needs one thing from the device physics: how gate delay (and
// therefore drive current) depends on Vdd and on threshold-voltage shifts
// across the sub-/near-/super-threshold regions. We use the EKV-style
// interpolation
//
//     I_on(Vdd, Vth) = Is * softplus((Vdd - Vth) / (2 n vT))^alpha
//
// which reduces to the exponential subthreshold law for Vdd << Vth and to
// the alpha-power (velocity-saturated) law for Vdd >> Vth, with a smooth
// near-threshold transition. This reproduces exactly the sensitivity
// structure that makes near-threshold operation variation-prone: the
// relative delay sensitivity to Vth grows steeply as Vdd approaches Vth.
#pragma once

#include "device/tech_node.h"

namespace ntv::device {

/// Thermal voltage kT/q at 300 K [V].
inline constexpr double kThermalVoltage = 0.02585;

/// Numerically-stable softplus ln(1 + e^x).
double softplus(double x) noexcept;

/// d/dx softplus(x) = logistic sigmoid.
double sigmoid(double x) noexcept;

/// Transregional on-current model for one technology node.
/// All queries are pure and thread-safe.
class TransistorModel {
 public:
  explicit TransistorModel(const TechNode& node) noexcept;

  /// Normalized on-current (drive) at supply `vdd` with threshold `vth`.
  /// Units are arbitrary; only ratios matter for delay.
  double ion(double vdd, double vth) const noexcept;

  /// d ln(I_on) / d Vth at the given bias — negative (higher Vth, less
  /// current). Its magnitude is the gate-delay sensitivity used by the
  /// variation calibration.
  double dlnion_dvth(double vdd, double vth) const noexcept;

  /// Subthreshold off-current at gate bias 0 (used by the leakage-energy
  /// model): I_off(vdd) = ion at an effective overdrive of -vth0 plus a
  /// small DIBL correction.
  double ioff(double vdd) const noexcept;

  const TechNode& node() const noexcept { return *node_; }

  /// Half the subthreshold denominator 2*n*vT [V].
  double two_n_vt() const noexcept { return two_n_vt_; }

 private:
  const TechNode* node_;
  double two_n_vt_;
};

}  // namespace ntv::device
