// Deterministic construction of gate- and chain-delay distributions.
//
// Given the calibrated variation model, the delay of one gate (with the
// die-systematic part factored out) is D0(V, Vth0 + dVth)*(1 + eps) with
// independent normal dVth and eps. We integrate that 2-D density onto a
// uniform delay grid (numerically exact up to grid resolution, no Monte
// Carlo noise) and obtain chain distributions as i.i.d. convolution powers
// via FFT. These GridDistributions power the fast architecture-level
// samplers: a lane's delay is max of k i.i.d. chains, sampled exactly with
// the inverse-CDF trick Q_max(u) = Q(u^(1/k)).
#pragma once

#include "device/variation.h"
#include "stats/discrete_distribution.h"

namespace ntv::device {

/// Resolution options for the quadrature and the delay grid.
struct DistributionOptions {
  std::size_t bins = 4096;       ///< Delay grid bins.
  double z_span = 8.0;           ///< Integrate variations over +-z_span sigma.
  std::size_t vth_points = 601;  ///< Quadrature points for dVth.
  std::size_t mult_points = 301; ///< Quadrature points for eps.
};

/// Distribution of one gate's delay at supply `vdd`, within-die random
/// variation only (die-systematic handling is multiplicative, see
/// VariationModel::die_scale).
stats::GridDistribution build_gate_distribution(
    const VariationModel& model, double vdd,
    const DistributionOptions& opt = {});

/// Distribution of an `n_stages` FO4 chain (i.i.d. gate sum), within-die
/// random variation only.
stats::GridDistribution build_chain_distribution(
    const VariationModel& model, double vdd, int n_stages,
    const DistributionOptions& opt = {});

/// Distribution of an `n_stages` chain with the die/systematic variation
/// folded in as an additive Gaussian term (exact to first order in the
/// small systematic spread): the *total* cross-chip delay distribution of
/// one critical path. This matches the paper's architecture-level
/// methodology, which samples every critical path i.i.d. from the total
/// path-delay distribution.
stats::GridDistribution build_total_chain_distribution(
    const VariationModel& model, double vdd, int n_stages,
    const DistributionOptions& opt = {});

}  // namespace ntv::device
