#include "device/gate_delay.h"

namespace ntv::device {

GateDelayModel::GateDelayModel(const TechNode& node) : model_(node) {
  const double raw =
      node.fo4_ref_vdd / model_.ion(node.fo4_ref_vdd, node.vth0);
  scale_ = node.fo4_ref_delay / raw;
}

double GateDelayModel::fo4_delay(double vdd) const noexcept {
  return delay(vdd, 0.0, 0.0);
}

double GateDelayModel::delay(double vdd, double dvth,
                             double eps) const noexcept {
  const double vth = node().vth0 + dvth;
  return scale_ * vdd / model_.ion(vdd, vth) * (1.0 + eps);
}

double GateDelayModel::sensitivity(double vdd) const noexcept {
  return -model_.dlnion_dvth(vdd, node().vth0);
}

}  // namespace ntv::device
