// Sampling interface of the process-variation model.
//
// Two levels of variation, following the paper's setup (normally
// distributed Vth shifts from RDF plus LER, and a drive component):
//
//  * die-to-die systematic: one (dVth_sys, eps_sys) pair per chip, shared
//    by every gate on that chip;
//  * within-die random: independent (dVth, eps) per gate.
//
// The exact per-gate delay is
//     D = D0(Vdd, Vth0 + dVth_sys + dVth) * (1 + eps_sys) * (1 + eps).
//
// For fast distribution-level work the systematic part is equivalently
// applied as a multiplicative die factor exp(g(V)*dVth_sys)*(1+eps_sys)
// (first-order in the small systematic shift); `die_scale` computes it.
#pragma once

#include "device/calibration.h"
#include "device/gate_delay.h"
#include "device/tech_node.h"
#include "stats/rng.h"

namespace ntv::device {

/// Per-chip systematic variation state.
struct DieState {
  double dvth_sys = 0.0;  ///< Systematic Vth shift [V].
  double mult_sys = 0.0;  ///< Systematic drive variation [fraction].
};

/// Per-gate random variation state.
struct GateVar {
  double dvth = 0.0;  ///< Random Vth shift [V].
  double mult = 0.0;  ///< Random drive variation [fraction].
};

/// Bundles a gate-delay model with calibrated sigma parameters and
/// provides samplers. Construction runs the closed-form calibration
/// against the node's anchors.
class VariationModel {
 public:
  explicit VariationModel(const TechNode& node);
  VariationModel(const TechNode& node, const VariationParams& params);

  const GateDelayModel& gate_model() const noexcept { return model_; }
  const VariationParams& params() const noexcept { return params_; }
  const TechNode& node() const noexcept { return model_.node(); }

  /// Draws the systematic state of one chip.
  DieState sample_die(stats::Xoshiro256pp& rng) const noexcept;

  /// Draws the random state of one gate.
  GateVar sample_gate(stats::Xoshiro256pp& rng) const noexcept;

  /// Exact delay of one gate given both variation levels [s].
  double gate_delay(double vdd, const DieState& die,
                    const GateVar& gate) const noexcept;

  /// Exact delay of an `n_stages` chain: sum of i.i.d. gate delays under a
  /// common die state [s].
  double chain_delay(double vdd, int n_stages, const DieState& die,
                     stats::Xoshiro256pp& rng) const noexcept;

  /// Multiplicative die factor equivalent to the systematic state at
  /// voltage `vdd` (first-order): exp(g(V)*dVth_sys) * (1 + eps_sys).
  double die_scale(double vdd, const DieState& die) const noexcept;

 private:
  GateDelayModel model_;
  VariationParams params_;
};

}  // namespace ntv::device
