#include "device/variation.h"

#include <cmath>

namespace ntv::device {

VariationModel::VariationModel(const TechNode& node)
    : model_(node),
      params_(calibrate_variation(model_, node.anchors)) {}

VariationModel::VariationModel(const TechNode& node,
                               const VariationParams& params)
    : model_(node), params_(params) {}

DieState VariationModel::sample_die(stats::Xoshiro256pp& rng) const noexcept {
  return DieState{rng.normal(0.0, params_.sigma_vth_sys),
                  rng.normal(0.0, params_.sigma_mult_sys)};
}

GateVar VariationModel::sample_gate(stats::Xoshiro256pp& rng) const noexcept {
  return GateVar{rng.normal(0.0, params_.sigma_vth_rand),
                 rng.normal(0.0, params_.sigma_mult_rand)};
}

double VariationModel::gate_delay(double vdd, const DieState& die,
                                  const GateVar& gate) const noexcept {
  return model_.delay(vdd, die.dvth_sys + gate.dvth, gate.mult) *
         (1.0 + die.mult_sys);
}

double VariationModel::chain_delay(double vdd, int n_stages,
                                   const DieState& die,
                                   stats::Xoshiro256pp& rng) const noexcept {
  double sum = 0.0;
  for (int i = 0; i < n_stages; ++i) {
    sum += gate_delay(vdd, die, sample_gate(rng));
  }
  return sum;
}

double VariationModel::die_scale(double vdd,
                                 const DieState& die) const noexcept {
  const double g = model_.sensitivity(vdd);
  return std::exp(g * die.dvth_sys) * (1.0 + die.mult_sys);
}

}  // namespace ntv::device
