#include "device/calibration.h"

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ntv::device {

namespace {

// Converts a 3sigma/mu percentage into a sigma/mu fraction.
double pct_to_frac(double pct) { return pct / 100.0 / 3.0; }

// Solves the dense n x n system M y = r by Gaussian elimination with
// partial pivoting (n <= 4 here). Returns false when singular.
bool solve_small(std::vector<std::vector<double>>& m, std::vector<double>& r) {
  const std::size_t n = r.size();
  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(m[i][k]) > std::abs(m[pivot][k])) pivot = i;
    }
    if (std::abs(m[pivot][k]) < 1e-300) return false;
    std::swap(m[k], m[pivot]);
    std::swap(r[k], r[pivot]);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double f = m[i][k] / m[k][k];
      for (std::size_t j = k; j < n; ++j) m[i][j] -= f * m[k][j];
      r[i] -= f * r[k];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = i + 1; j < n; ++j) r[i] -= m[i][j] * r[j];
    r[i] /= m[i][i];
  }
  return true;
}

// Non-negative least squares over the four variance parameters
// x = [svr^2, smr^2, svs^2, sms^2] against the anchor series. The model is
// linear in x:
//   var_single(V) = g^2 x0 + x1 + g^2 x2 + x3
//   var_chain(V)  = (g^2 x0 + x1)/N + g^2 x2 + x3
// Rows are weighted by 1/target^2 (relative variance error). Negative
// solutions are handled with a simple active-set clamp.
VariationParams calibrate_lsq(const GateDelayModel& model,
                              const std::vector<AnchorPoint>& series,
                              int chain_length) {
  const double n = chain_length;
  std::vector<std::array<double, 4>> rows;
  std::vector<double> rhs;
  for (const AnchorPoint& p : series) {
    const double g2 = model.sensitivity(p.vdd) * model.sensitivity(p.vdd);
    const double s2 = pct_to_frac(p.single_pct) * pct_to_frac(p.single_pct);
    const double c2 = pct_to_frac(p.chain_pct) * pct_to_frac(p.chain_pct);
    rows.push_back({g2 / s2, 1.0 / s2, g2 / s2, 1.0 / s2});
    rhs.push_back(1.0);  // s2 / s2
    rows.push_back({g2 / n / c2, 1.0 / n / c2, g2 / c2, 1.0 / c2});
    rhs.push_back(1.0);  // c2 / c2
  }

  std::array<bool, 4> active = {true, true, true, true};
  std::array<double, 4> x = {0.0, 0.0, 0.0, 0.0};
  for (int pass = 0; pass < 5; ++pass) {
    std::vector<std::size_t> idx;
    for (std::size_t j = 0; j < 4; ++j) {
      if (active[j]) idx.push_back(j);
    }
    if (idx.empty()) break;
    const std::size_t k = idx.size();
    std::vector<std::vector<double>> m(k, std::vector<double>(k, 0.0));
    std::vector<double> y(k, 0.0);
    for (std::size_t r = 0; r < rows.size(); ++r) {
      for (std::size_t a = 0; a < k; ++a) {
        y[a] += rows[r][idx[a]] * rhs[r];
        for (std::size_t b = 0; b < k; ++b) {
          m[a][b] += rows[r][idx[a]] * rows[r][idx[b]];
        }
      }
    }
    if (!solve_small(m, y))
      throw std::domain_error("calibrate_lsq: singular normal equations");

    bool clamped = false;
    x = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t a = 0; a < k; ++a) {
      if (y[a] < 0.0) {
        active[idx[a]] = false;
        clamped = true;
      } else {
        x[idx[a]] = y[a];
      }
    }
    if (!clamped) break;
  }

  return VariationParams{
      .sigma_vth_rand = std::sqrt(x[0]),
      .sigma_mult_rand = std::sqrt(x[1]),
      .sigma_vth_sys = std::sqrt(x[2]),
      .sigma_mult_sys = std::sqrt(x[3]),
  };
}

}  // namespace

VariationParams calibrate_variation(const GateDelayModel& model,
                                    const VariationAnchors& a,
                                    int chain_length) {
  if (a.series.size() >= 3) {
    if (chain_length < 2)
      throw std::domain_error(
          "calibrate_variation: chain_length must be >= 2");
    return calibrate_lsq(model, a.series, chain_length);
  }
  if (chain_length < 2)
    throw std::domain_error("calibrate_variation: chain_length must be >= 2");
  const double n = chain_length;

  const double g_hi = model.sensitivity(a.v_hi);
  const double g_lo = model.sensitivity(a.v_lo);
  const double gg = g_lo * g_lo - g_hi * g_hi;
  if (gg <= 0.0)
    throw std::domain_error(
        "calibrate_variation: sensitivity must grow toward low voltage");

  const double s_hi = pct_to_frac(a.single_hi_pct);
  const double s_lo = pct_to_frac(a.single_lo_pct);
  const double c_hi = pct_to_frac(a.chain_hi_pct);
  const double c_lo = pct_to_frac(a.chain_lo_pct);

  // Random (within-die) part: var_single - var_chain = r^2 * (1 - 1/N).
  const double shrink = 1.0 - 1.0 / n;
  const double r2_hi = (s_hi * s_hi - c_hi * c_hi) / shrink;
  const double r2_lo = (s_lo * s_lo - c_lo * c_lo) / shrink;
  if (r2_hi <= 0.0 || r2_lo <= 0.0)
    throw std::domain_error(
        "calibrate_variation: chain spread exceeds single-gate spread");

  const double svr2 = (r2_lo - r2_hi) / gg;
  if (svr2 < 0.0)
    throw std::domain_error(
        "calibrate_variation: random Vth variance negative");
  const double smr2 = r2_hi - g_hi * g_hi * svr2;
  if (smr2 < 0.0)
    throw std::domain_error(
        "calibrate_variation: random drive variance negative");

  // Systematic part: var_chain - r^2/N = q^2.
  const double q2_hi = c_hi * c_hi - r2_hi / n;
  const double q2_lo = c_lo * c_lo - r2_lo / n;
  if (q2_hi < 0.0 || q2_lo < 0.0)
    throw std::domain_error(
        "calibrate_variation: systematic variance negative");

  const double svs2 = (q2_lo - q2_hi) / gg;
  if (svs2 < 0.0)
    throw std::domain_error(
        "calibrate_variation: systematic Vth variance negative");
  const double sms2 = q2_hi - g_hi * g_hi * svs2;
  if (sms2 < 0.0)
    throw std::domain_error(
        "calibrate_variation: systematic drive variance negative");

  return VariationParams{
      .sigma_vth_rand = std::sqrt(svr2),
      .sigma_mult_rand = std::sqrt(smr2),
      .sigma_vth_sys = std::sqrt(svs2),
      .sigma_mult_sys = std::sqrt(sms2),
  };
}

double predict_single_gate_pct(const GateDelayModel& model,
                               const VariationParams& p, double vdd) {
  const double g = model.sensitivity(vdd);
  const double r2 = g * g * p.sigma_vth_rand * p.sigma_vth_rand +
                    p.sigma_mult_rand * p.sigma_mult_rand;
  const double q2 = g * g * p.sigma_vth_sys * p.sigma_vth_sys +
                    p.sigma_mult_sys * p.sigma_mult_sys;
  return 300.0 * std::sqrt(r2 + q2);
}

double predict_chain_pct(const GateDelayModel& model, const VariationParams& p,
                         double vdd, int n_stages) {
  const double g = model.sensitivity(vdd);
  const double r2 = g * g * p.sigma_vth_rand * p.sigma_vth_rand +
                    p.sigma_mult_rand * p.sigma_mult_rand;
  const double q2 = g * g * p.sigma_vth_sys * p.sigma_vth_sys +
                    p.sigma_mult_sys * p.sigma_mult_sys;
  return 300.0 * std::sqrt(q2 + r2 / static_cast<double>(n_stages));
}

}  // namespace ntv::device
