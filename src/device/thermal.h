// Temperature-aware delay: the temperature-inversion effect.
//
// Two competing temperature dependencies set a gate's speed:
//  * mobility degrades as T rises (mu ~ (T/T0)^-m): slower when hot;
//  * Vth falls as T rises (dVth/dT ~ -1 mV/K) and the thermal voltage
//    grows: more overdrive, faster when hot — and near threshold the
//    current is exponentially sensitive to exactly that overdrive.
//
// At nominal voltage the mobility term wins (hot = slow, the familiar
// sign-off corner); in the near-threshold region the Vth term wins
// (hot = FAST), with a crossover voltage in between. Any NTV margining
// scheme must therefore size margins at the COLD corner — the opposite
// of super-threshold practice. This module quantifies that.
#pragma once

#include "device/tech_node.h"

namespace ntv::device {

/// Temperature coefficients (typical bulk-CMOS values).
struct ThermalParams {
  double t0 = 300.0;             ///< Reference temperature [K].
  double vth_tc = -1.0e-3;       ///< dVth/dT [V/K].
  double mobility_exponent = 1.5;  ///< mu ~ (T/T0)^-m.
};

/// FO4 delay as a function of supply voltage AND temperature.
/// At (vdd, t0) it reproduces GateDelayModel exactly.
class ThermalDelayModel {
 public:
  explicit ThermalDelayModel(const TechNode& node,
                             const ThermalParams& params = {});

  /// FO4 delay at supply `vdd` and temperature `temp_k` [s].
  double fo4_delay(double vdd, double temp_k) const;

  /// Ratio delay(t_hot)/delay(t_cold) at `vdd`: > 1 in the conventional
  /// region, < 1 once temperature inversion sets in.
  double hot_cold_ratio(double vdd, double t_cold = 273.15,
                        double t_hot = 398.15) const;

  /// Supply voltage where delay(t_hot) == delay(t_cold) — the
  /// temperature-inversion crossover. Searched on [v_lo, v_hi]; throws
  /// std::invalid_argument when no crossover exists in the range.
  double inversion_crossover_vdd(double t_cold = 273.15,
                                 double t_hot = 398.15, double v_lo = 0.35,
                                 double v_hi = 1.2) const;

  const TechNode& node() const noexcept { return *node_; }
  const ThermalParams& params() const noexcept { return params_; }

 private:
  const TechNode* node_;
  ThermalParams params_;
  double scale_;  ///< K*C constant matched to the card at t0.
};

}  // namespace ntv::device
