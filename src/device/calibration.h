// Closed-form calibration of the variation model.
//
// The paper reports 3sigma/mu (percent) for a single FO4 inverter and for a
// chain of 50 FO4 inverters at two anchor voltages. Under the first-order
// variation model
//
//   relative delay variance of one gate at V:
//       r^2(V) = (g(V) * s_vr)^2 + s_mr^2          (within-die random)
//   shared across a die:
//       q^2(V) = (g(V) * s_vs)^2 + s_ms^2          (die-to-die systematic)
//
//   single gate:      var_single(V) = r^2(V) + q^2(V)
//   chain of N gates: var_chain(V)  = q^2(V) + r^2(V) / N
//
// the four sigmas (s_vr, s_mr, s_vs, s_ms) follow in closed form from the
// four anchor values, because g(V) — the gate-delay sensitivity to Vth — is
// fixed by the current model. This is how the sigma parameters of every
// TechNode card are derived.
#pragma once

#include "device/gate_delay.h"
#include "device/tech_node.h"

namespace ntv::device {

/// Solves the four sigma parameters from the node's anchors.
/// Throws std::domain_error when the anchors are infeasible under the
/// first-order model (any implied variance negative).
VariationParams calibrate_variation(const GateDelayModel& model,
                                    const VariationAnchors& anchors,
                                    int chain_length = 50);

/// First-order *prediction* of the single-gate 3sigma/mu [%] at `vdd` for
/// fitted parameters — used by tests to compare the closed form against
/// Monte Carlo.
double predict_single_gate_pct(const GateDelayModel& model,
                               const VariationParams& p, double vdd);

/// First-order prediction of the N-stage chain 3sigma/mu [%] at `vdd`.
double predict_chain_pct(const GateDelayModel& model,
                         const VariationParams& p, double vdd, int n_stages);

}  // namespace ntv::device
