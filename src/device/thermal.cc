#include "device/thermal.h"

#include <cmath>
#include <stdexcept>

#include "device/transistor.h"
#include "stats/root_find.h"

namespace ntv::device {

namespace {

/// Transregional on-current at an explicit temperature: the thermal
/// voltage scales with T, the threshold shifts with vth_tc, and the drive
/// carries the mobility power law.
double ion_at(const TechNode& node, const ThermalParams& p, double vdd,
              double temp_k) {
  const double vt = kThermalVoltage * temp_k / 300.0;
  const double two_n_vt = 2.0 * node.n_slope * vt;
  const double vth = node.vth0 + p.vth_tc * (temp_k - p.t0);
  const double x = (vdd - vth) / two_n_vt;
  const double mobility = std::pow(temp_k / p.t0, -p.mobility_exponent);
  return mobility * std::pow(softplus(x), node.alpha);
}

}  // namespace

ThermalDelayModel::ThermalDelayModel(const TechNode& node,
                                     const ThermalParams& params)
    : node_(&node), params_(params) {
  const double raw =
      node.fo4_ref_vdd / ion_at(node, params, node.fo4_ref_vdd, params.t0);
  scale_ = node.fo4_ref_delay / raw;
}

double ThermalDelayModel::fo4_delay(double vdd, double temp_k) const {
  if (vdd <= 0.0 || temp_k < 200.0 || temp_k > 450.0)
    throw std::invalid_argument("ThermalDelayModel: operating point");
  return scale_ * vdd / ion_at(*node_, params_, vdd, temp_k);
}

double ThermalDelayModel::hot_cold_ratio(double vdd, double t_cold,
                                         double t_hot) const {
  return fo4_delay(vdd, t_hot) / fo4_delay(vdd, t_cold);
}

double ThermalDelayModel::inversion_crossover_vdd(double t_cold,
                                                  double t_hot, double v_lo,
                                                  double v_hi) const {
  auto f = [&](double v) { return hot_cold_ratio(v, t_cold, t_hot) - 1.0; };
  if (f(v_lo) * f(v_hi) > 0.0)
    throw std::invalid_argument(
        "inversion_crossover_vdd: no crossover in range");
  stats::RootOptions opt;
  opt.x_tol = 1e-5;
  return stats::brent(f, v_lo, v_hi, opt).x;
}

}  // namespace ntv::device
