#include "device/dist_cache.h"

#include <array>
#include <bit>
#include <cstdint>
#include <string>

#include "exec/cache.h"
#include "obs/metrics.h"

namespace ntv::device {

namespace {

/// Everything a builder's output depends on, with doubles compared by bit
/// pattern (cache keys must never be split or merged by float noise).
struct DistKey {
  /// 0 = gate, 1 = chain, 2 = total chain, 3 = lane over total chain,
  /// 4 = lane over chain (no systematic component).
  int kind = 0;
  int order = 1;  ///< max_of_iid order for the lane kinds, else 1.
  std::string node_name;
  std::array<std::uint64_t, 6> node_bits{};    ///< Delay-model fields.
  std::array<std::uint64_t, 4> sigma_bits{};   ///< Calibrated sigmas.
  std::uint64_t vdd_bits = 0;
  int n_stages = 0;
  std::uint64_t z_span_bits = 0;
  std::size_t bins = 0;
  std::size_t vth_points = 0;
  std::size_t mult_points = 0;

  auto operator<=>(const DistKey&) const = default;
};

DistKey make_key(int kind, const VariationModel& model, double vdd,
                 int n_stages, const DistributionOptions& opt) {
  const TechNode& node = model.node();
  const VariationParams& p = model.params();
  DistKey key;
  key.kind = kind;
  key.node_name = std::string(node.name);
  key.node_bits = {
      std::bit_cast<std::uint64_t>(node.nominal_vdd),
      std::bit_cast<std::uint64_t>(node.vth0),
      std::bit_cast<std::uint64_t>(node.n_slope),
      std::bit_cast<std::uint64_t>(node.alpha),
      std::bit_cast<std::uint64_t>(node.fo4_ref_delay),
      std::bit_cast<std::uint64_t>(node.fo4_ref_vdd),
  };
  key.sigma_bits = {
      std::bit_cast<std::uint64_t>(p.sigma_vth_rand),
      std::bit_cast<std::uint64_t>(p.sigma_mult_rand),
      std::bit_cast<std::uint64_t>(p.sigma_vth_sys),
      std::bit_cast<std::uint64_t>(p.sigma_mult_sys),
  };
  key.vdd_bits = std::bit_cast<std::uint64_t>(vdd);
  key.n_stages = n_stages;
  key.z_span_bits = std::bit_cast<std::uint64_t>(opt.z_span);
  key.bins = opt.bins;
  key.vth_points = opt.vth_points;
  key.mult_points = opt.mult_points;
  return key;
}

using DistCache =
    exec::KeyedOnceCache<DistKey,
                         std::shared_ptr<const stats::GridDistribution>>;

DistCache& cache() {
  // Leaked so entries requested during static destruction stay valid.
  static DistCache* c = new DistCache();
  return *c;
}

std::shared_ptr<const stats::GridDistribution> lookup(
    int kind, const VariationModel& model, double vdd, int n_stages,
    const DistributionOptions& opt, int order = 1) {
  static obs::Counter& calls = obs::counter("device.dist_cache.calls");
  static obs::Counter& builds = obs::counter("device.dist_cache.builds");
  calls.increment();
  DistKey key = make_key(kind, model, vdd, n_stages, opt);
  key.order = order;
  const auto result = cache().get_or_build(std::move(key), [&] {
    builds.increment();
    stats::GridDistribution dist =
        kind == 0   ? build_gate_distribution(model, vdd, opt)
        : kind == 1 ? build_chain_distribution(model, vdd, n_stages, opt)
        : kind == 2 ? build_total_chain_distribution(model, vdd, n_stages,
                                                     opt)
        : kind == 3
            ? cached_total_chain_distribution(model, vdd, n_stages, opt)
                  ->max_of_iid(order)
            : cached_chain_distribution(model, vdd, n_stages, opt)
                  ->max_of_iid(order);
    return std::make_shared<const stats::GridDistribution>(
        std::move(dist));
  });
  obs::gauge("device.dist_cache.entries")
      .set(static_cast<double>(cache().size()));
  return result;
}

}  // namespace

std::shared_ptr<const stats::GridDistribution> cached_gate_distribution(
    const VariationModel& model, double vdd, const DistributionOptions& opt) {
  return lookup(0, model, vdd, 1, opt);
}

std::shared_ptr<const stats::GridDistribution> cached_chain_distribution(
    const VariationModel& model, double vdd, int n_stages,
    const DistributionOptions& opt) {
  return lookup(1, model, vdd, n_stages, opt);
}

std::shared_ptr<const stats::GridDistribution>
cached_total_chain_distribution(const VariationModel& model, double vdd,
                                int n_stages,
                                const DistributionOptions& opt) {
  return lookup(2, model, vdd, n_stages, opt);
}

std::shared_ptr<const stats::GridDistribution> cached_lane_distribution(
    const VariationModel& model, double vdd, int n_stages,
    int paths_per_lane, bool include_systematic,
    const DistributionOptions& opt) {
  return lookup(include_systematic ? 3 : 4, model, vdd, n_stages, opt,
                paths_per_lane);
}

std::size_t distribution_cache_size() { return cache().size(); }

void clear_distribution_cache() { cache().clear(); }

}  // namespace ntv::device
