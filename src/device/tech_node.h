// Technology node parameter cards.
//
// The paper simulates four nodes: 90 nm / 45 nm commercial GP models and
// 32 nm / 22 nm PTM HP models. Those model cards are proprietary or
// external, so this library ships analytic "cards" — parameters of the
// transregional current model in transistor.h plus variation statistics —
// calibrated so the delay-variation numbers the paper reports are
// reproduced (see DESIGN.md §5 and calibration.h).
#pragma once

#include <span>
#include <string_view>
#include <vector>

namespace ntv::device {

/// One calibration target: the paper's reported 3sigma/mu [%] for a single
/// FO4 inverter and a 50-stage FO4 chain at a supply voltage.
struct AnchorPoint {
  double vdd = 0.0;        ///< Supply voltage [V].
  double single_pct = 0.0; ///< Single-gate 3sigma/mu [%].
  double chain_pct = 0.0;  ///< 50-FO4-chain 3sigma/mu [%].
};

/// Variation calibration anchors. With exactly two points the four sigma
/// parameters follow in closed form; with more (90 nm has all six Fig. 1
/// voltages) a non-negative least-squares fit over the whole series is
/// used (see calibration.cc).
struct VariationAnchors {
  double v_hi = 1.0;          ///< High (nominal) anchor voltage [V].
  double single_hi_pct = 0.0; ///< Single-gate 3sigma/mu at v_hi [%].
  double chain_hi_pct = 0.0;  ///< 50-FO4-chain 3sigma/mu at v_hi [%].
  double v_lo = 0.5;          ///< Low (near-threshold) anchor voltage [V].
  double single_lo_pct = 0.0; ///< Single-gate 3sigma/mu at v_lo [%].
  double chain_lo_pct = 0.0;  ///< 50-FO4-chain 3sigma/mu at v_lo [%].

  /// Optional full anchor series; when non-empty it supersedes the two
  /// endpoint anchors above for calibration.
  std::vector<AnchorPoint> series;
};

/// Fitted variation model parameters (derived from VariationAnchors).
struct VariationParams {
  double sigma_vth_rand = 0.0;  ///< Within-die random Vth sigma [V] (RDF+LER).
  double sigma_mult_rand = 0.0; ///< Within-die random multiplicative drive
                                ///< sigma [fraction] (Leff/mobility/LER).
  double sigma_vth_sys = 0.0;   ///< Die-to-die systematic Vth sigma [V].
  double sigma_mult_sys = 0.0;  ///< Die-to-die systematic drive sigma [fr].
};

/// One technology node: transregional current-model parameters, the FO4
/// delay scale, the voltage range the paper simulates, and variation
/// anchors.
struct TechNode {
  std::string_view name;     ///< e.g. "90nm GP".
  double nominal_vdd = 1.0;  ///< Full-voltage (FV) operating point [V].
  double vth0 = 0.45;        ///< Nominal threshold voltage [V].
  double n_slope = 1.4;      ///< Subthreshold slope factor (S = n*vT*ln10).
  double alpha = 1.4;        ///< Velocity-saturation (alpha-power) index.
  double fo4_ref_delay = 45e-12;  ///< FO4 delay at fo4_ref_vdd [s].
  double fo4_ref_vdd = 1.0;       ///< Voltage at which fo4_ref_delay holds.
  VariationAnchors anchors;  ///< Calibration targets for sigma fitting.

  /// Lowest voltage the paper sweeps for this node.
  double min_vdd = 0.5;
};

/// 90 nm commercial general-purpose card.
/// Anchors are the exact Fig. 1 values of the paper.
const TechNode& tech_90nm();

/// 45 nm commercial general-purpose card.
const TechNode& tech_45nm();

/// 32 nm PTM high-performance card (nominal 0.9 V).
const TechNode& tech_32nm();

/// 22 nm PTM high-performance card (nominal 0.8 V).
const TechNode& tech_22nm();

/// All four nodes in the paper's order (90, 45, 32, 22 nm).
std::span<const TechNode* const> all_nodes();

/// Looks a node up by name ("90nm GP", ...); throws std::out_of_range if
/// the name is unknown.
const TechNode& node_by_name(std::string_view name);

}  // namespace ntv::device
