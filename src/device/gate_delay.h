// FO4 gate-delay model.
//
// Delay of one FO4 (fan-out-of-4) inverter stage:
//
//     D(Vdd, dVth, eps) = K * C * Vdd / I_on(Vdd, Vth0 + dVth) * (1 + eps)
//
// where dVth is the device threshold shift (RDF + LER) and eps is a
// voltage-independent multiplicative drive variation (effective-length /
// mobility component of LER). K*C is folded into one scale constant chosen
// so that the nominal delay matches the node's fo4_ref_delay at
// fo4_ref_vdd (for 90 nm: 441 ps at 0.5 V, i.e. the paper's 22.05 ns
// 50-stage chain).
#pragma once

#include "device/tech_node.h"
#include "device/transistor.h"

namespace ntv::device {

/// Nominal and perturbed FO4 stage delay for one technology node.
/// Pure and thread-safe.
class GateDelayModel {
 public:
  explicit GateDelayModel(const TechNode& node);

  /// Nominal FO4 delay at supply `vdd` [s].
  double fo4_delay(double vdd) const noexcept;

  /// FO4 delay with a threshold shift and multiplicative drive factor [s].
  double delay(double vdd, double dvth, double eps) const noexcept;

  /// Relative delay sensitivity to Vth [1/V]:
  ///   g(V) = d ln D / d Vth = -d ln I_on / d Vth  (positive).
  /// This is the quantity the closed-form sigma calibration uses.
  double sensitivity(double vdd) const noexcept;

  const TechNode& node() const noexcept { return model_.node(); }
  const TransistorModel& transistor() const noexcept { return model_; }

 private:
  TransistorModel model_;
  double scale_;  ///< K*C folded constant [s * current-unit / V].
};

}  // namespace ntv::device
