// NEON kernels (aarch64). 128-bit lanes (2 doubles), so the wide paths
// are 2-wide; kernels without a profitable 2-wide form delegate to the
// scalar reference. Compiled with -ffp-contract=off and no FMA
// intrinsics, so every op rounds exactly like the scalar reference.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <limits>

#include "simd/kernels.h"

namespace ntv::simd::detail {

namespace {

namespace neon {

double max_reduce(const double* x, std::size_t n) {
  double worst = -std::numeric_limits<double>::infinity();
  std::size_t i = 0;
  if (n >= 2) {
    float64x2_t acc = vld1q_f64(x);
    for (i = 2; i + 2 <= n; i += 2) {
      acc = vmaxq_f64(acc, vld1q_f64(x + i));
    }
    worst = vmaxvq_f64(acc);
  }
  for (; i < n; ++i) {
    if (x[i] > worst) worst = x[i];
  }
  return worst;
}

void scale(double* x, std::size_t n, double s) {
  const float64x2_t sv = vdupq_n_f64(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    vst1q_f64(x + i, vmulq_f64(vld1q_f64(x + i), sv));
  }
  for (; i < n; ++i) x[i] *= s;
}

void greater_mask(const double* x, std::size_t n, double threshold,
                  std::uint8_t* mask) {
  const float64x2_t thr = vdupq_n_f64(threshold);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t m = vcgtq_f64(vld1q_f64(x + i), thr);
    mask[i] = static_cast<std::uint8_t>(vgetq_lane_u64(m, 0) & 1);
    mask[i + 1] = static_cast<std::uint8_t>(vgetq_lane_u64(m, 1) & 1);
  }
  for (; i < n; ++i) {
    mask[i] = x[i] > threshold ? 1 : 0;
  }
}

void count_ge4(const double* x, std::size_t n, const double* knots,
               std::size_t* counts) {
  const float64x2_t k0 = vdupq_n_f64(knots[0]);
  const float64x2_t k1 = vdupq_n_f64(knots[1]);
  const float64x2_t k2 = vdupq_n_f64(knots[2]);
  const float64x2_t k3 = vdupq_n_f64(knots[3]);
  uint64x2_t a0 = vdupq_n_u64(0), a1 = vdupq_n_u64(0);
  uint64x2_t a2 = vdupq_n_u64(0), a3 = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const float64x2_t v = vld1q_f64(x + i);
    a0 = vsubq_u64(a0, vcgeq_f64(v, k0));  // mask is all-ones == -1
    a1 = vsubq_u64(a1, vcgeq_f64(v, k1));
    a2 = vsubq_u64(a2, vcgeq_f64(v, k2));
    a3 = vsubq_u64(a3, vcgeq_f64(v, k3));
  }
  std::size_t c0 = vgetq_lane_u64(a0, 0) + vgetq_lane_u64(a0, 1);
  std::size_t c1 = vgetq_lane_u64(a1, 0) + vgetq_lane_u64(a1, 1);
  std::size_t c2 = vgetq_lane_u64(a2, 0) + vgetq_lane_u64(a2, 1);
  std::size_t c3 = vgetq_lane_u64(a3, 0) + vgetq_lane_u64(a3, 1);
  for (; i < n; ++i) {
    const double v = x[i];
    c0 += v >= knots[0];
    c1 += v >= knots[1];
    c2 += v >= knots[2];
    c3 += v >= knots[3];
  }
  counts[0] += c0;
  counts[1] += c1;
  counts[2] += c2;
  counts[3] += c3;
}

}  // namespace neon

}  // namespace

const Kernels& neon_kernels() noexcept {
  static const Kernels k = {
      Backend::kNeon,        scalar::fill_uniform4, scalar::quantile,
      neon::max_reduce,      scalar::find_below,    neon::greater_mask,
      neon::count_ge4,       neon::scale,           scalar::weighted_sums,
      scalar::fft_stage,     scalar::exp_batch,     scalar::log_batch,
  };
  return k;
}

}  // namespace ntv::simd::detail

#endif  // __aarch64__
