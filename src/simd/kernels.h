// Internal: per-backend kernel table constructors. Each TU defines one
// backend; simd.cc owns dispatch. The scalar TU also exports the scalar
// reference implementations so wide backends can delegate tails (and the
// NEON backend can delegate kernels it does not specialize) without
// duplicating the reference algorithm.
#pragma once

#include "simd/simd.h"

namespace ntv::simd::detail {

const Kernels& scalar_kernels() noexcept;
#if defined(__x86_64__) || defined(_M_X64)
const Kernels& avx2_kernels() noexcept;
#endif
#if defined(__aarch64__)
const Kernels& neon_kernels() noexcept;
#endif

// Scalar reference bodies, shared by the wide backends for remainders.
namespace scalar {
void fill_uniform4(std::uint64_t* state, double* out, std::size_t n);
void quantile(const QuantileGrid& g, const double* u, double* out,
              std::size_t n, std::size_t* scans);
double max_reduce(const double* x, std::size_t n);
std::size_t find_below(const double* x, std::size_t n, double threshold);
void greater_mask(const double* x, std::size_t n, double threshold,
                  std::uint8_t* mask);
void count_ge4(const double* x, std::size_t n, const double* knots,
               std::size_t* counts);
void scale(double* x, std::size_t n, double s);
void weighted_sums(const double* v, const double* w, std::size_t n,
                   double* sums);
void fft_stage(double* reim, const double* tw, std::size_t n,
               std::size_t len);
void exp_batch(const double* x, std::size_t n, double* out);
void log_batch(const double* x, std::size_t n, double* out);

/// One element of the quantile kernel (also the tail path of the wide
/// backends). Kept inline in this header so every backend agrees on the
/// exact operation sequence.
inline double quantile_one(const QuantileGrid& g, double u,
                           std::size_t& scans) noexcept {
  u = u < 1e-300 ? 1e-300 : (u > 1.0 ? 1.0 : u);
  const auto raw = static_cast<std::size_t>(u * g.buckets);
  const auto cap = static_cast<std::size_t>(g.buckets);
  std::size_t idx = g.guide[raw < cap ? raw : cap];
  while (idx > 0 && g.cdf[idx - 1] >= u) --idx;
  while (g.cdf[idx] < u) {
    ++idx;
    ++scans;
  }
  if (idx == 0) return g.lo;
  const double c0 = g.cdf[idx - 1];
  const double c1 = g.cdf[idx];
  const double frac = (c1 > c0) ? (u - c0) / (c1 - c0) : 0.0;
  return g.lo + g.step * (static_cast<double>(idx - 1) + frac);
}

/// One element of exp_batch: cephes-style rational approximation with
/// the exact operation order every backend mirrors. Max observed error
/// vs the true value is ~2 ulp over the double range.
inline double exp_one(double x) noexcept {
  constexpr double kLog2e = 1.4426950408889634073599;
  constexpr double kLn2Hi = 6.93145751953125e-1;
  constexpr double kLn2Lo = 1.42860682030941723212e-6;
  constexpr double kMax = 709.43;   // Above: overflow to +inf.
  constexpr double kMin = -708.39;  // Below: underflow to 0.
  // Clamps first: they keep k inside [-1022, 1023], so the int cast and
  // exponent construction below stay defined. The wide backends compute
  // the full pipeline and blend these cases in at the end — same result.
  if (x > kMax) return __builtin_inf();
  if (x < kMin) return 0.0;
  const double k = __builtin_floor(kLog2e * x + 0.5);
  double r = x - k * kLn2Hi;
  r = r - k * kLn2Lo;
  const double xx = r * r;
  double px = 1.26177193074810590878e-4;
  px = px * xx + 3.02994407707441961300e-2;
  px = px * xx + 9.99999999999999999910e-1;
  px = px * r;
  double qx = 3.00198505138664455042e-6;
  qx = qx * xx + 2.52448340349684104192e-3;
  qx = qx * xx + 2.27265548208155028766e-1;
  qx = qx * xx + 2.00000000000000000005e0;
  double e = 1.0 + 2.0 * px / (qx - px);
  // 2^k by direct exponent construction; k is in [-1022, 1023] once x
  // is inside the clamp window.
  const auto ki = static_cast<std::int64_t>(k);
  double scale;
  const std::uint64_t bits = static_cast<std::uint64_t>(ki + 1023) << 52;
  __builtin_memcpy(&scale, &bits, sizeof scale);
  e = e * scale;
  return e;
}

/// One element of log_batch: cephes-style rational approximation (same
/// cross-backend contract as exp_one). ~1 ulp for normal positive x.
inline double log_one(double x) noexcept {
  if (x <= 0.0)
    return x == 0.0 ? -__builtin_inf() : __builtin_nan("");
  std::uint64_t bits;
  __builtin_memcpy(&bits, &x, sizeof bits);
  std::int64_t e = static_cast<std::int64_t>((bits >> 52) & 0x7ff) - 1022;
  double m;
  const std::uint64_t mbits =
      (bits & 0xfffffffffffffULL) | (0x3feULL << 52);
  __builtin_memcpy(&m, &mbits, sizeof m);
  constexpr double kSqrtHalf = 0.70710678118654752440;
  if (m < kSqrtHalf) {
    e -= 1;
    m = m + m;
  }
  const double y = m - 1.0;
  const double z = y * y;
  double p = 1.01875663804580931796e-4;
  p = p * y + 4.97494994976747001425e-1;
  p = p * y + 4.70579119878881725854e0;
  p = p * y + 1.44989225341610930846e1;
  p = p * y + 1.79368678507819816313e1;
  p = p * y + 7.70838733755885391666e0;
  double q = 1.0;
  q = q * y + 1.12873587189167450590e1;
  q = q * y + 4.52279145837532221105e1;
  q = q * y + 8.29875266912776603211e1;
  q = q * y + 7.11544750618563894466e1;
  q = q * y + 2.31251620126765340583e1;
  double w = y * z * (p / q);
  w = w - 0.5 * z;
  const double fe = static_cast<double>(e);
  double res = y + w;
  res = res - fe * 2.121944400546905827679e-4;
  res = res + fe * 0.693359375;
  return res;
}

}  // namespace scalar

}  // namespace ntv::simd::detail
