#include "simd/simd.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "simd/kernels.h"

namespace ntv::simd {

namespace {

const Kernels* table_for(Backend b) noexcept {
  switch (b) {
    case Backend::kScalar:
      return &detail::scalar_kernels();
    case Backend::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return &detail::avx2_kernels();
#else
      return nullptr;
#endif
    case Backend::kNeon:
#if defined(__aarch64__)
      return &detail::neon_kernels();
#else
      return nullptr;
#endif
  }
  return nullptr;
}

unsigned usable_mask() noexcept {
  return compiled_mask() & supported_mask();
}

/// Resolves the startup backend: $NTV_SIMD wins (hard error when it names
/// a backend this build/CPU cannot run — CI forces backends and must
/// never silently fall back to a different one), else widest usable.
const Kernels* resolve_initial() noexcept {
  const char* env = std::getenv("NTV_SIMD");
  if (env != nullptr && *env != '\0' &&
      std::strcmp(env, "auto") != 0) {
    const auto parsed = parse_backend(env);
    if (!parsed.has_value()) {
      std::fprintf(stderr,
                   "ntv: NTV_SIMD=%s is not a known backend "
                   "(scalar|avx2|neon|auto)\n",
                   env);
      std::exit(2);
    }
    const Kernels* t =
        (mask_of(*parsed) & usable_mask()) != 0 ? table_for(*parsed)
                                                : nullptr;
    if (t == nullptr) {
      std::fprintf(stderr,
                   "ntv: NTV_SIMD=%s requests a backend this %s\n", env,
                   (mask_of(*parsed) & compiled_mask()) == 0
                       ? "binary was not built with"
                       : "CPU does not support");
      std::exit(2);
    }
    return t;
  }
  return table_for(select_backend(usable_mask()));
}

std::atomic<const Kernels*> g_active{nullptr};

const Kernels* active_table() noexcept {
  const Kernels* t = g_active.load(std::memory_order_acquire);
  if (t == nullptr) {
    // Benign race: every thread resolves the same table.
    t = resolve_initial();
    g_active.store(t, std::memory_order_release);
  }
  return t;
}

}  // namespace

std::string_view to_string(Backend backend) noexcept {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kAvx2:
      return "avx2";
    case Backend::kNeon:
      return "neon";
  }
  return "scalar";
}

std::optional<Backend> parse_backend(std::string_view name) noexcept {
  if (name == "scalar") return Backend::kScalar;
  if (name == "avx2") return Backend::kAvx2;
  if (name == "neon") return Backend::kNeon;
  return std::nullopt;
}

unsigned compiled_mask() noexcept {
  unsigned mask = mask_of(Backend::kScalar);
#if defined(__x86_64__) || defined(_M_X64)
  mask |= mask_of(Backend::kAvx2);
#endif
#if defined(__aarch64__)
  mask |= mask_of(Backend::kNeon);
#endif
  return mask;
}

unsigned supported_mask() noexcept {
  unsigned mask = mask_of(Backend::kScalar);
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2")) mask |= mask_of(Backend::kAvx2);
#endif
#if defined(__aarch64__)
  // NEON is mandatory in AArch64.
  mask |= mask_of(Backend::kNeon);
#endif
  return mask;
}

Backend select_backend(unsigned mask) noexcept {
  if ((mask & mask_of(Backend::kAvx2)) != 0) return Backend::kAvx2;
  if ((mask & mask_of(Backend::kNeon)) != 0) return Backend::kNeon;
  return Backend::kScalar;
}

Backend active_backend() noexcept { return active_table()->backend; }

bool force_backend(Backend backend) noexcept {
  if ((mask_of(backend) & usable_mask()) == 0) return false;
  g_active.store(table_for(backend), std::memory_order_release);
  return true;
}

const Kernels& kernels() noexcept { return *active_table(); }

const Kernels* kernels_for(Backend backend) noexcept {
  if ((mask_of(backend) & compiled_mask()) == 0) return nullptr;
  return table_for(backend);
}

}  // namespace ntv::simd
