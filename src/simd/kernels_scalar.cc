// Scalar reference kernels: the byte-identity contract is defined HERE.
// Every wide backend must reproduce these outputs bit for bit, including
// reduction association (four accumulator lanes combined (a0+a1)+(a2+a3))
// and the forward-scan count of the quantile kernel.
#include "simd/kernels.h"

#include <limits>

namespace ntv::simd::detail {

namespace scalar {

namespace {

constexpr std::uint64_t rotl64(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void fill_uniform4(std::uint64_t* state, double* out, std::size_t n) {
  // Four xoshiro256++ generators in lockstep, state[word*4 + lane]. The
  // update mirrors Xoshiro256pp::next() word for word; the uniform map is
  // (next >> 11) * 2^-53, identical to Xoshiro256pp::uniform().
  for (std::size_t t = 0; t < n / 4; ++t) {
    for (std::size_t l = 0; l < 4; ++l) {
      std::uint64_t s0 = state[0 * 4 + l];
      std::uint64_t s1 = state[1 * 4 + l];
      std::uint64_t s2 = state[2 * 4 + l];
      std::uint64_t s3 = state[3 * 4 + l];
      const std::uint64_t result = rotl64(s0 + s3, 23) + s0;
      const std::uint64_t tmp = s1 << 17;
      s2 ^= s0;
      s3 ^= s1;
      s1 ^= s2;
      s0 ^= s3;
      s2 ^= tmp;
      s3 = rotl64(s3, 45);
      state[0 * 4 + l] = s0;
      state[1 * 4 + l] = s1;
      state[2 * 4 + l] = s2;
      state[3 * 4 + l] = s3;
      out[4 * t + l] = static_cast<double>(result >> 11) * 0x1.0p-53;
    }
  }
}

void quantile(const QuantileGrid& g, const double* u, double* out,
              std::size_t n, std::size_t* scans) {
  std::size_t local = 0;
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = quantile_one(g, u[i], local);
  }
  *scans += local;
}

double max_reduce(const double* x, std::size_t n) {
  double worst = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] > worst) worst = x[i];
  }
  return worst;
}

std::size_t find_below(const double* x, std::size_t n, double threshold) {
  for (std::size_t i = 0; i < n; ++i) {
    if (x[i] < threshold) return i;
  }
  return n;
}

void greater_mask(const double* x, std::size_t n, double threshold,
                  std::uint8_t* mask) {
  for (std::size_t i = 0; i < n; ++i) {
    mask[i] = x[i] > threshold ? 1 : 0;
  }
}

void count_ge4(const double* x, std::size_t n, const double* knots,
               std::size_t* counts) {
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double v = x[i];
    c0 += v >= knots[0];
    c1 += v >= knots[1];
    c2 += v >= knots[2];
    c3 += v >= knots[3];
  }
  counts[0] += c0;
  counts[1] += c1;
  counts[2] += c2;
  counts[3] += c3;
}

void scale(double* x, std::size_t n, double s) {
  for (std::size_t i = 0; i < n; ++i) x[i] *= s;
}

void weighted_sums(const double* v, const double* w, std::size_t n,
                   double* sums) {
  // Canonical association: element i goes to accumulator lane i % 4;
  // lanes combine (a0+a1)+(a2+a3). The AVX2/NEON variants realize the
  // same lanes as vector elements, so their results are bit-identical.
  double sw[4] = {0.0, 0.0, 0.0, 0.0};
  double sw2[4] = {0.0, 0.0, 0.0, 0.0};
  double swv[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t l = i % 4;
    const double wi = w[i];
    sw[l] += wi;
    sw2[l] += wi * wi;
    if (v != nullptr) swv[l] += wi * v[i];
  }
  sums[0] += (sw[0] + sw[1]) + (sw[2] + sw[3]);
  sums[1] += (sw2[0] + sw2[1]) + (sw2[2] + sw2[3]);
  if (v != nullptr) sums[2] += (swv[0] + swv[1]) + (swv[2] + swv[3]);
}

void fft_stage(double* reim, const double* tw, std::size_t n,
               std::size_t len) {
  const std::size_t half = len / 2;
  for (std::size_t i = 0; i < n; i += len) {
    double* blk = reim + 2 * i;
    for (std::size_t k = 0; k < half; ++k) {
      const double wr = tw[2 * k];
      const double wi = tw[2 * k + 1];
      double* lo = blk + 2 * k;
      double* hi = blk + 2 * (k + half);
      const double ur = lo[0];
      const double ui = lo[1];
      const double vr = hi[0] * wr - hi[1] * wi;
      const double vi = hi[0] * wi + hi[1] * wr;
      lo[0] = ur + vr;
      lo[1] = ui + vi;
      hi[0] = ur - vr;
      hi[1] = ui - vi;
    }
  }
}

void exp_batch(const double* x, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = exp_one(x[i]);
}

void log_batch(const double* x, std::size_t n, double* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = log_one(x[i]);
}

}  // namespace scalar

const Kernels& scalar_kernels() noexcept {
  static const Kernels k = {
      Backend::kScalar,       scalar::fill_uniform4, scalar::quantile,
      scalar::max_reduce,     scalar::find_below,    scalar::greater_mask,
      scalar::count_ge4,      scalar::scale,         scalar::weighted_sums,
      scalar::fft_stage,      scalar::exp_batch,     scalar::log_batch,
  };
  return k;
}

}  // namespace ntv::simd::detail
