// Portable SIMD kernel layer with runtime dispatch.
//
// The Monte Carlo hot loops — xoshiro substream generation, guide-table
// inverse-CDF lookups, max-reductions and weighted accumulation — are
// structure-of-arrays passes over contiguous doubles: exactly the shape
// the simulated SIMD machine itself exploits. This layer provides one
// kernel table per backend (scalar reference, AVX2, NEON) and resolves
// the widest supported one once at startup.
//
// The non-negotiable contract is BYTE-IDENTITY: every backend must
// produce bit-identical output to the scalar reference for every kernel
// (tests/simd enforces it per kernel and end-to-end). Three rules make
// that tractable:
//
//  1. Elementwise IEEE arithmetic (mul/add/sub/div/min/max/compare) is
//     identical per lane on every backend, so kernels are free to
//     vectorize any elementwise chain. FMA contraction would break this
//     (one rounding instead of two), so every TU in this directory is
//     compiled with -ffp-contract=off and the AVX2 kernels use only
//     non-FMA intrinsics.
//  2. libm stays SCALAR everywhere (no vector exp/log/pow — their
//     rounding is library-specific); callers do libm passes outside the
//     kernels.
//  3. Reductions fix ONE association order — four parallel accumulators
//     combined as (a0+a1)+(a2+a3) — defined by the scalar reference and
//     reproduced exactly by the wide backends.
//
// Dispatch: resolved once from $NTV_SIMD ("scalar" / "avx2" / "neon" /
// "auto", default auto = widest supported) or forced programmatically
// via force_backend() (the --simd flag of the bench/CLI binaries).
// Forcing a backend the CPU cannot run is a hard error at the CLI
// boundary and a soft failure (returns false) in force_backend, so tests
// can probe the fallback chain. -march flags are confined to the kernel
// TUs (simd_avx2.cc), so the binary still runs on baseline hardware.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>

namespace ntv::simd {

/// Instruction-set backends, narrowest first. kScalar is always
/// available and is the reference all other backends must match bit for
/// bit.
enum class Backend { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// "scalar" / "avx2" / "neon".
std::string_view to_string(Backend backend) noexcept;

/// Inverse of to_string ("auto" and unknown names yield std::nullopt).
std::optional<Backend> parse_backend(std::string_view name) noexcept;

/// Bit for Backend b in the support/compiled masks below.
constexpr unsigned mask_of(Backend b) noexcept {
  return 1u << static_cast<unsigned>(b);
}

/// Backends whose kernel TUs were compiled into this binary.
unsigned compiled_mask() noexcept;

/// Backends this CPU can execute (runtime CPUID probe; always includes
/// kScalar). Intersect with compiled_mask() for usable backends.
unsigned supported_mask() noexcept;

/// The fallback-chain policy, as a pure function of an availability mask
/// (unit-testable without touching CPUID): picks the widest backend
/// present in `mask`, scalar when nothing wider is available.
Backend select_backend(unsigned mask) noexcept;

/// The backend the kernel table currently dispatches to. Resolved once
/// on first use: $NTV_SIMD if set (a hard process error when it names a
/// backend this build/CPU cannot run — CI forces backends and must never
/// silently test the wrong one), else select_backend(compiled & supported).
Backend active_backend() noexcept;

/// Forces the active backend. Returns false (and changes nothing) when
/// `backend` is not compiled in or not supported by this CPU. Callers
/// own the error handling — the CLI treats false as a fatal flag error,
/// tests use it to probe each compiled-in backend.
bool force_backend(Backend backend) noexcept;

/// Raw view over a GridDistribution's quantile tables (CDF + guide).
/// The kernel contract mirrors GridDistribution::quantile_index exactly:
/// bucket start, one backward step per float-rounding promotion, forward
/// scan counting probe steps.
struct QuantileGrid {
  const double* cdf = nullptr;          ///< cdf[i], size n, cdf[n-1] == 1.
  std::size_t n = 0;
  const std::uint32_t* guide = nullptr; ///< guide[j], j in [0, buckets].
  double buckets = 0.0;                 ///< Bucket count as a double.
  double lo = 0.0;
  double step = 0.0;
};

/// One function-pointer table per backend. All kernels are pure
/// (no hidden state) and byte-identical across backends.
struct Kernels {
  Backend backend = Backend::kScalar;

  /// Four interleaved xoshiro256++ lanes: `state` is 16 words laid out
  /// state[word*4 + lane]; writes out[4*t + lane] = lane's t-th uniform
  /// in [0,1) (the same (next() >> 11) * 2^-53 mapping as
  /// Xoshiro256pp::uniform). n must be a multiple of 4.
  void (*fill_uniform4)(std::uint64_t* state, double* out, std::size_t n);

  /// out[i] = inverse CDF of u[i] with linear interpolation (the
  /// GridDistribution::quantile_impl algorithm, including the
  /// [1e-300, 1] clamp). *scans accumulates forward probe steps — the
  /// count must match the scalar reference exactly (it feeds the
  /// stats.quantile.scans counter).
  void (*quantile)(const QuantileGrid& g, const double* u, double* out,
                   std::size_t n, std::size_t* scans);

  /// max(x[0..n)); -inf for n == 0. Exact for any association.
  double (*max_reduce)(const double* x, std::size_t n);

  /// Index of the first element with x[i] < threshold, or n.
  std::size_t (*find_below)(const double* x, std::size_t n, double threshold);

  /// mask[i] = (x[i] > threshold) ? 1 : 0.
  void (*greater_mask)(const double* x, std::size_t n, double threshold,
                       std::uint8_t* mask);

  /// counts[k] += #{ i : x[i] >= knots[k] } for k in [0,4) — the
  /// importance-ladder slow-draw counts.
  void (*count_ge4)(const double* x, std::size_t n, const double* knots,
                    std::size_t* counts);

  /// x[i] *= s.
  void (*scale)(double* x, std::size_t n, double s);

  /// Weighted accumulation in the canonical 4-lane association:
  /// sums[0] += sum w, sums[1] += sum w*w, sums[2] += sum w*v
  /// (v may be null when only weight moments are needed). All backends
  /// use four accumulators per sum, combined (a0+a1)+(a2+a3), with the
  /// scalar tail folded into lane (i % 4).
  void (*weighted_sums)(const double* v, const double* w, std::size_t n,
                        double* sums);

  /// One radix-2 FFT stage of size `len` over n interleaved (re,im)
  /// pairs: for every block of len complex values, butterflies against
  /// the len/2 twiddle pairs in `tw` (interleaved re,im). Elementwise
  /// per butterfly, so vector variants are bit-identical.
  void (*fft_stage)(double* reim, const double* tw, std::size_t n,
                    std::size_t len);

  /// out[i] = exp(x[i]) via a fixed cephes-style rational polynomial —
  /// deliberately NOT libm (libm has no wide form and its rounding can
  /// differ across libc builds). Every backend evaluates the identical
  /// operation sequence, so results stay bit-identical across dispatch;
  /// accuracy is ~2 ulp of the true value. Consumers are
  /// tolerance-grade paths (the SPICE Newton stamps); the byte-gated
  /// sampling artifacts keep calling scalar libm and never see this.
  /// Precondition: x[i] is not NaN (+-inf map to inf / 0).
  void (*exp_batch)(const double* x, std::size_t n, double* out);

  /// out[i] = log(x[i]); contract as exp_batch. Precondition: x[i] is
  /// finite and >= 0 (0 maps to -inf, negatives to NaN; denormal
  /// inputs lose the usual gradual-underflow accuracy).
  void (*log_batch)(const double* x, std::size_t n, double* out);
};

/// The kernel table of the active backend.
const Kernels& kernels() noexcept;

/// Kernel tables of specific backends, for cross-backend identity tests.
/// Returns null when the backend is not compiled into this binary.
const Kernels* kernels_for(Backend backend) noexcept;

}  // namespace ntv::simd
