// AVX2 kernels. Compiled with -mavx2 -ffp-contract=off (see
// CMakeLists.txt) and ONLY in this TU, so the rest of the binary runs on
// baseline x86-64; dispatch guarantees these are never called unless the
// CPU reports AVX2.
//
// Byte-identity notes (the contract is defined by kernels_scalar.cc):
//  * no FMA intrinsics anywhere — every product and sum is a separately
//    rounded IEEE op, matching the scalar reference exactly;
//  * the uint64 -> double uniform conversion splits the 53-bit value
//    into exact 32/21-bit halves, so the only rounded operation is the
//    final * 2^-53 — the same single rounding as the scalar cast;
//  * quantile keeps the data-dependent guide corrections scalar (they
//    are one or two compares in the common case) and vectorizes the
//    bucket math and interpolation around them, so the scan counter and
//    every output bit match the reference;
//  * reductions realize the scalar reference's four accumulator lanes
//    as the four vector elements and combine them in the same order.
#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <limits>

#include "simd/kernels.h"

namespace ntv::simd::detail {

namespace {

namespace avx2 {

void fill_uniform4(std::uint64_t* state, double* out, std::size_t n) {
  __m256i s0 = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state));
  __m256i s1 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state + 4));
  __m256i s2 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state + 8));
  __m256i s3 =
      _mm256_loadu_si256(reinterpret_cast<const __m256i*>(state + 12));
  const __m256i lo32 = _mm256_set1_epi64x(0xFFFFFFFFLL);
  const __m256i magic = _mm256_set1_epi64x(0x4330000000000000LL);  // 2^52
  const __m256d two52 = _mm256_set1_pd(0x1.0p52);
  const __m256d two32 = _mm256_set1_pd(0x1.0p32);
  const __m256d scale53 = _mm256_set1_pd(0x1.0p-53);
  for (std::size_t t = 0; t < n / 4; ++t) {
    // result = rotl(s0 + s3, 23) + s0
    const __m256i sum = _mm256_add_epi64(s0, s3);
    const __m256i rot = _mm256_or_si256(_mm256_slli_epi64(sum, 23),
                                        _mm256_srli_epi64(sum, 64 - 23));
    const __m256i result = _mm256_add_epi64(rot, s0);
    const __m256i tmp = _mm256_slli_epi64(s1, 17);
    s2 = _mm256_xor_si256(s2, s0);
    s3 = _mm256_xor_si256(s3, s1);
    s1 = _mm256_xor_si256(s1, s2);
    s0 = _mm256_xor_si256(s0, s3);
    s2 = _mm256_xor_si256(s2, tmp);
    s3 = _mm256_or_si256(_mm256_slli_epi64(s3, 45),
                         _mm256_srli_epi64(s3, 64 - 45));
    // (result >> 11) * 2^-53, with the 53-bit integer rebuilt from two
    // exactly-converted halves (hi < 2^21, lo < 2^32): hi*2^32 + lo is
    // exact, so the final multiply is the only rounded op.
    const __m256i v = _mm256_srli_epi64(result, 11);
    const __m256i hi = _mm256_srli_epi64(v, 32);
    const __m256i lo = _mm256_and_si256(v, lo32);
    const __m256d dhi = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(hi, magic)), two52);
    const __m256d dlo = _mm256_sub_pd(
        _mm256_castsi256_pd(_mm256_or_si256(lo, magic)), two52);
    const __m256d d = _mm256_add_pd(_mm256_mul_pd(dhi, two32), dlo);
    _mm256_storeu_pd(out + 4 * t, _mm256_mul_pd(d, scale53));
  }
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state), s0);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state + 4), s1);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state + 8), s2);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(state + 12), s3);
}

void quantile(const QuantileGrid& g, const double* u, double* out,
              std::size_t n, std::size_t* scans) {
  std::size_t local = 0;
  const double* cdf = g.cdf;
  const auto cap32 = static_cast<int>(g.buckets);
  const __m256d u_lo = _mm256_set1_pd(1e-300);
  const __m256d u_hi = _mm256_set1_pd(1.0);
  const __m256d bucketsv = _mm256_set1_pd(g.buckets);
  const __m128i capv = _mm_set1_epi32(cap32);
  const __m256d lov = _mm256_set1_pd(g.lo);
  const __m256d stepv = _mm256_set1_pd(g.step);
  const __m128i one32 = _mm_set1_epi32(1);
  const __m128i zero32 = _mm_setzero_si128();

  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d uu = _mm256_min_pd(
        _mm256_max_pd(_mm256_loadu_pd(u + i), u_lo), u_hi);
    // Bucket lookup (truncating cast, min-clamped like the scalar path).
    const __m128i raw =
        _mm_min_epi32(_mm256_cvttpd_epi32(_mm256_mul_pd(uu, bucketsv)),
                      capv);
    __m128i idx = _mm_i32gather_epi32(
        reinterpret_cast<const int*>(g.guide), raw, 4);
    // Guide corrections are data-dependent short walks (usually zero or
    // one step); run them scalar per lane against the shared CDF so the
    // scan count is exactly the reference's.
    alignas(16) int idx_arr[4];
    alignas(32) double u_arr[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(idx_arr), idx);
    _mm256_store_pd(u_arr, uu);
    for (int l = 0; l < 4; ++l) {
      std::size_t ix = static_cast<unsigned>(idx_arr[l]);
      const double ul = u_arr[l];
      while (ix > 0 && cdf[ix - 1] >= ul) --ix;
      while (cdf[ix] < ul) {
        ++ix;
        ++local;
      }
      idx_arr[l] = static_cast<int>(ix);
    }
    idx = _mm_load_si128(reinterpret_cast<const __m128i*>(idx_arr));
    // Interpolation, fully vectorized: c0 = cdf[idx-1] (idx==0 lanes are
    // blended to `lo` afterwards, so the clamped gather index is safe).
    const __m128i idxm1 = _mm_max_epi32(_mm_sub_epi32(idx, one32), zero32);
    const __m256d c0 = _mm256_i32gather_pd(cdf, idxm1, 8);
    const __m256d c1 = _mm256_i32gather_pd(cdf, idx, 8);
    const __m256d gt = _mm256_cmp_pd(c1, c0, _CMP_GT_OQ);
    const __m256d frac = _mm256_and_pd(
        _mm256_div_pd(_mm256_sub_pd(uu, c0), _mm256_sub_pd(c1, c0)), gt);
    const __m256d didx = _mm256_cvtepi32_pd(idxm1);
    __m256d r = _mm256_add_pd(
        lov, _mm256_mul_pd(stepv, _mm256_add_pd(didx, frac)));
    const __m256d is_zero = _mm256_castsi256_pd(
        _mm256_cvtepi32_epi64(_mm_cmpeq_epi32(idx, zero32)));
    r = _mm256_blendv_pd(r, lov, is_zero);
    _mm256_storeu_pd(out + i, r);
  }
  for (; i < n; ++i) {
    out[i] = scalar::quantile_one(g, u[i], local);
  }
  *scans += local;
}

double max_reduce(const double* x, std::size_t n) {
  // max() is exact for any association, so a plain vector max + tail is
  // bit-identical to the scalar scan.
  double worst = -std::numeric_limits<double>::infinity();
  std::size_t i = 0;
  if (n >= 4) {
    __m256d acc = _mm256_loadu_pd(x);
    for (i = 4; i + 4 <= n; i += 4) {
      acc = _mm256_max_pd(acc, _mm256_loadu_pd(x + i));
    }
    const __m128d hi128 = _mm256_extractf128_pd(acc, 1);
    __m128d m = _mm_max_pd(_mm256_castpd256_pd128(acc), hi128);
    m = _mm_max_sd(m, _mm_unpackhi_pd(m, m));
    worst = _mm_cvtsd_f64(m);
  }
  for (; i < n; ++i) {
    if (x[i] > worst) worst = x[i];
  }
  return worst;
}

std::size_t find_below(const double* x, std::size_t n, double threshold) {
  const __m256d thr = _mm256_set1_pd(threshold);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int m = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(x + i), thr, _CMP_LT_OQ));
    if (m != 0) return i + static_cast<std::size_t>(__builtin_ctz(m));
  }
  for (; i < n; ++i) {
    if (x[i] < threshold) return i;
  }
  return n;
}

void greater_mask(const double* x, std::size_t n, double threshold,
                  std::uint8_t* mask) {
  const __m256d thr = _mm256_set1_pd(threshold);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const int m = _mm256_movemask_pd(
        _mm256_cmp_pd(_mm256_loadu_pd(x + i), thr, _CMP_GT_OQ));
    mask[i] = static_cast<std::uint8_t>(m & 1);
    mask[i + 1] = static_cast<std::uint8_t>((m >> 1) & 1);
    mask[i + 2] = static_cast<std::uint8_t>((m >> 2) & 1);
    mask[i + 3] = static_cast<std::uint8_t>((m >> 3) & 1);
  }
  for (; i < n; ++i) {
    mask[i] = x[i] > threshold ? 1 : 0;
  }
}

void count_ge4(const double* x, std::size_t n, const double* knots,
               std::size_t* counts) {
  const __m256d k0 = _mm256_set1_pd(knots[0]);
  const __m256d k1 = _mm256_set1_pd(knots[1]);
  const __m256d k2 = _mm256_set1_pd(knots[2]);
  const __m256d k3 = _mm256_set1_pd(knots[3]);
  std::size_t c0 = 0, c1 = 0, c2 = 0, c3 = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    c0 += static_cast<unsigned>(__builtin_popcount(
        _mm256_movemask_pd(_mm256_cmp_pd(v, k0, _CMP_GE_OQ))));
    c1 += static_cast<unsigned>(__builtin_popcount(
        _mm256_movemask_pd(_mm256_cmp_pd(v, k1, _CMP_GE_OQ))));
    c2 += static_cast<unsigned>(__builtin_popcount(
        _mm256_movemask_pd(_mm256_cmp_pd(v, k2, _CMP_GE_OQ))));
    c3 += static_cast<unsigned>(__builtin_popcount(
        _mm256_movemask_pd(_mm256_cmp_pd(v, k3, _CMP_GE_OQ))));
  }
  for (; i < n; ++i) {
    const double v = x[i];
    c0 += v >= knots[0];
    c1 += v >= knots[1];
    c2 += v >= knots[2];
    c3 += v >= knots[3];
  }
  counts[0] += c0;
  counts[1] += c1;
  counts[2] += c2;
  counts[3] += c3;
}

void scale(double* x, std::size_t n, double s) {
  const __m256d sv = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_storeu_pd(x + i, _mm256_mul_pd(_mm256_loadu_pd(x + i), sv));
  }
  for (; i < n; ++i) x[i] *= s;
}

void weighted_sums(const double* v, const double* w, std::size_t n,
                   double* sums) {
  // The vector elements ARE the scalar reference's four accumulator
  // lanes (element i lands in lane i % 4), and the tail folds into lane
  // (i % 4) exactly like the reference.
  __m256d acc_w = _mm256_setzero_pd();
  __m256d acc_w2 = _mm256_setzero_pd();
  __m256d acc_wv = _mm256_setzero_pd();
  std::size_t i = 0;
  if (v != nullptr) {
    for (; i + 4 <= n; i += 4) {
      const __m256d wv = _mm256_loadu_pd(w + i);
      acc_w = _mm256_add_pd(acc_w, wv);
      acc_w2 = _mm256_add_pd(acc_w2, _mm256_mul_pd(wv, wv));
      acc_wv = _mm256_add_pd(acc_wv,
                             _mm256_mul_pd(wv, _mm256_loadu_pd(v + i)));
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      const __m256d wv = _mm256_loadu_pd(w + i);
      acc_w = _mm256_add_pd(acc_w, wv);
      acc_w2 = _mm256_add_pd(acc_w2, _mm256_mul_pd(wv, wv));
    }
  }
  alignas(32) double sw[4], sw2[4], swv[4];
  _mm256_store_pd(sw, acc_w);
  _mm256_store_pd(sw2, acc_w2);
  _mm256_store_pd(swv, acc_wv);
  for (; i < n; ++i) {
    const std::size_t l = i % 4;
    const double wi = w[i];
    sw[l] += wi;
    sw2[l] += wi * wi;
    if (v != nullptr) swv[l] += wi * v[i];
  }
  sums[0] += (sw[0] + sw[1]) + (sw[2] + sw[3]);
  sums[1] += (sw2[0] + sw2[1]) + (sw2[2] + sw2[3]);
  if (v != nullptr) sums[2] += (swv[0] + swv[1]) + (swv[2] + swv[3]);
}

void fft_stage(double* reim, const double* tw, std::size_t n,
               std::size_t len) {
  const std::size_t half = len / 2;
  if (half < 2) {
    scalar::fft_stage(reim, tw, n, len);
    return;
  }
  const std::size_t half2 = half & ~std::size_t{1};
  for (std::size_t i = 0; i < n; i += len) {
    double* blk = reim + 2 * i;
    double* base_lo = blk;
    double* base_hi = blk + 2 * half;
    std::size_t k = 0;
    for (; k < half2; k += 2) {
      // Two complex butterflies per vector; the complex product is the
      // textbook (ac-bd, ad+bc) with separately rounded ops (addsub),
      // matching the scalar formula term for term.
      const __m256d h = _mm256_loadu_pd(base_hi + 2 * k);
      const __m256d wv = _mm256_loadu_pd(tw + 2 * k);
      const __m256d wr = _mm256_movedup_pd(wv);
      const __m256d wi = _mm256_permute_pd(wv, 0xF);
      const __m256d t1 = _mm256_mul_pd(h, wr);
      const __m256d hs = _mm256_permute_pd(h, 0x5);
      const __m256d t2 = _mm256_mul_pd(hs, wi);
      const __m256d vv = _mm256_addsub_pd(t1, t2);
      const __m256d uu = _mm256_loadu_pd(base_lo + 2 * k);
      _mm256_storeu_pd(base_lo + 2 * k, _mm256_add_pd(uu, vv));
      _mm256_storeu_pd(base_hi + 2 * k, _mm256_sub_pd(uu, vv));
    }
    for (; k < half; ++k) {
      const double wr = tw[2 * k];
      const double wi = tw[2 * k + 1];
      double* lo = base_lo + 2 * k;
      double* hi = base_hi + 2 * k;
      const double ur = lo[0];
      const double ui = lo[1];
      const double vr = hi[0] * wr - hi[1] * wi;
      const double vi = hi[0] * wi + hi[1] * wr;
      lo[0] = ur + vr;
      lo[1] = ui + vi;
      hi[0] = ur - vr;
      hi[1] = ui - vi;
    }
  }
}

// exp/log: 4-wide mirrors of scalar::exp_one / scalar::log_one. Every
// arithmetic step is the same separately-rounded IEEE op in the same
// order (floor == _mm256_floor_pd, the 2^k exponent construction is
// exact integer math), so outputs are bit-identical to the reference.
void exp_batch(const double* x, std::size_t n, double* out) {
  const __m256d log2e = _mm256_set1_pd(1.4426950408889634073599);
  const __m256d ln2_hi = _mm256_set1_pd(6.93145751953125e-1);
  const __m256d ln2_lo = _mm256_set1_pd(1.42860682030941723212e-6);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d two = _mm256_set1_pd(2.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    const __m256d k =
        _mm256_floor_pd(_mm256_add_pd(_mm256_mul_pd(log2e, v), half));
    __m256d r = _mm256_sub_pd(v, _mm256_mul_pd(k, ln2_hi));
    r = _mm256_sub_pd(r, _mm256_mul_pd(k, ln2_lo));
    const __m256d xx = _mm256_mul_pd(r, r);
    __m256d px = _mm256_set1_pd(1.26177193074810590878e-4);
    px = _mm256_add_pd(_mm256_mul_pd(px, xx),
                       _mm256_set1_pd(3.02994407707441961300e-2));
    px = _mm256_add_pd(_mm256_mul_pd(px, xx),
                       _mm256_set1_pd(9.99999999999999999910e-1));
    px = _mm256_mul_pd(px, r);
    __m256d qx = _mm256_set1_pd(3.00198505138664455042e-6);
    qx = _mm256_add_pd(_mm256_mul_pd(qx, xx),
                       _mm256_set1_pd(2.52448340349684104192e-3));
    qx = _mm256_add_pd(_mm256_mul_pd(qx, xx),
                       _mm256_set1_pd(2.27265548208155028766e-1));
    qx = _mm256_add_pd(_mm256_mul_pd(qx, xx),
                       _mm256_set1_pd(2.00000000000000000005e0));
    __m256d e = _mm256_add_pd(
        one, _mm256_div_pd(_mm256_mul_pd(two, px), _mm256_sub_pd(qx, px)));
    // 2^k: k is integral and within int32 range inside the clamp window.
    const __m128i ki32 = _mm256_cvtpd_epi32(k);
    const __m256i ki64 = _mm256_cvtepi32_epi64(ki32);
    const __m256i bits = _mm256_slli_epi64(
        _mm256_add_epi64(ki64, _mm256_set1_epi64x(1023)), 52);
    e = _mm256_mul_pd(e, _mm256_castsi256_pd(bits));
    const __m256d inf =
        _mm256_set1_pd(std::numeric_limits<double>::infinity());
    e = _mm256_blendv_pd(
        e, inf, _mm256_cmp_pd(v, _mm256_set1_pd(709.43), _CMP_GT_OQ));
    e = _mm256_blendv_pd(
        e, _mm256_setzero_pd(),
        _mm256_cmp_pd(v, _mm256_set1_pd(-708.39), _CMP_LT_OQ));
    _mm256_storeu_pd(out + i, e);
  }
  for (; i < n; ++i) out[i] = scalar::exp_one(x[i]);
}

void log_batch(const double* x, std::size_t n, double* out) {
  const __m256i mant_mask = _mm256_set1_epi64x(0xfffffffffffffLL);
  const __m256i half_exp = _mm256_set1_epi64x(0x3feLL << 52);
  const __m256d one = _mm256_set1_pd(1.0);
  const __m256d sqrt_half = _mm256_set1_pd(0.70710678118654752440);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d v = _mm256_loadu_pd(x + i);
    const __m256i bits = _mm256_castpd_si256(v);
    // Unbiased-ish exponent e = biased - 1022 (frexp convention).
    const __m256i raw_exp =
        _mm256_srli_epi64(_mm256_slli_epi64(bits, 1), 53);
    __m256i e64 = _mm256_sub_epi64(raw_exp, _mm256_set1_epi64x(1022));
    __m256d m = _mm256_castsi256_pd(
        _mm256_or_si256(_mm256_and_si256(bits, mant_mask), half_exp));
    // frexp branch: m < sqrt(1/2) -> e -= 1, m *= 2.
    const __m256d small = _mm256_cmp_pd(m, sqrt_half, _CMP_LT_OQ);
    e64 = _mm256_sub_epi64(
        e64, _mm256_and_si256(_mm256_castpd_si256(small),
                              _mm256_set1_epi64x(1)));
    m = _mm256_blendv_pd(m, _mm256_add_pd(m, m), small);
    const __m256d y = _mm256_sub_pd(m, one);
    const __m256d z = _mm256_mul_pd(y, y);
    __m256d p = _mm256_set1_pd(1.01875663804580931796e-4);
    p = _mm256_add_pd(_mm256_mul_pd(p, y),
                      _mm256_set1_pd(4.97494994976747001425e-1));
    p = _mm256_add_pd(_mm256_mul_pd(p, y),
                      _mm256_set1_pd(4.70579119878881725854e0));
    p = _mm256_add_pd(_mm256_mul_pd(p, y),
                      _mm256_set1_pd(1.44989225341610930846e1));
    p = _mm256_add_pd(_mm256_mul_pd(p, y),
                      _mm256_set1_pd(1.79368678507819816313e1));
    p = _mm256_add_pd(_mm256_mul_pd(p, y),
                      _mm256_set1_pd(7.70838733755885391666e0));
    __m256d q = one;
    q = _mm256_add_pd(_mm256_mul_pd(q, y),
                      _mm256_set1_pd(1.12873587189167450590e1));
    q = _mm256_add_pd(_mm256_mul_pd(q, y),
                      _mm256_set1_pd(4.52279145837532221105e1));
    q = _mm256_add_pd(_mm256_mul_pd(q, y),
                      _mm256_set1_pd(8.29875266912776603211e1));
    q = _mm256_add_pd(_mm256_mul_pd(q, y),
                      _mm256_set1_pd(7.11544750618563894466e1));
    q = _mm256_add_pd(_mm256_mul_pd(q, y),
                      _mm256_set1_pd(2.31251620126765340583e1));
    __m256d w =
        _mm256_mul_pd(_mm256_mul_pd(y, z), _mm256_div_pd(p, q));
    w = _mm256_sub_pd(w, _mm256_mul_pd(_mm256_set1_pd(0.5), z));
    // int64 -> double: e is tiny (|e| <= ~1100), so the int32 cvt is
    // exact. Pack the low halves of each 64-bit lane.
    const __m128i e_lo = _mm256_castsi256_si128(
        _mm256_permutevar8x32_epi32(e64, _mm256_setr_epi32(0, 2, 4, 6,
                                                           0, 0, 0, 0)));
    const __m256d fe = _mm256_cvtepi32_pd(e_lo);
    __m256d res = _mm256_add_pd(y, w);
    res = _mm256_sub_pd(
        res, _mm256_mul_pd(fe, _mm256_set1_pd(2.121944400546905827679e-4)));
    res = _mm256_add_pd(res,
                        _mm256_mul_pd(fe, _mm256_set1_pd(0.693359375)));
    // x <= 0: -inf at exactly 0, NaN below (the scalar contract).
    const __m256d zero = _mm256_setzero_pd();
    res = _mm256_blendv_pd(
        res, _mm256_set1_pd(-std::numeric_limits<double>::infinity()),
        _mm256_cmp_pd(v, zero, _CMP_EQ_OQ));
    res = _mm256_blendv_pd(
        res, _mm256_set1_pd(std::numeric_limits<double>::quiet_NaN()),
        _mm256_cmp_pd(v, zero, _CMP_LT_OQ));
    _mm256_storeu_pd(out + i, res);
  }
  for (; i < n; ++i) out[i] = scalar::log_one(x[i]);
}

}  // namespace avx2

}  // namespace

const Kernels& avx2_kernels() noexcept {
  static const Kernels k = {
      Backend::kAvx2,       avx2::fill_uniform4, avx2::quantile,
      avx2::max_reduce,     avx2::find_below,    avx2::greater_mask,
      avx2::count_ge4,      avx2::scale,         avx2::weighted_sums,
      avx2::fft_stage,      avx2::exp_batch,     avx2::log_batch,
  };
  return k;
}

}  // namespace ntv::simd::detail

#endif  // x86-64
