#include "circuit/vcd.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace ntv::circuit {

namespace {

/// VCD identifier for signal `index`: short printable-ASCII strings.
std::string vcd_id(std::size_t index) {
  std::string id;
  do {
    id += static_cast<char>('!' + index % 94);
    index /= 94;
  } while (index > 0);
  return id;
}

}  // namespace

std::string to_vcd(const Netlist& netlist, const TransientResult& result,
                   const VcdOptions& options) {
  if (!result.ok)
    throw std::invalid_argument("to_vcd: transient result not ok");
  const std::size_t nodes = result.node_waveforms.size();

  std::string out;
  out += "$date ntvsim $end\n";
  out += "$version ntvsim mini-SPICE $end\n";
  out += "$timescale " + options.timescale + " $end\n";
  out += "$scope module circuit $end\n";
  for (std::size_t n = 0; n < nodes; ++n) {
    out += "$var real 64 " + vcd_id(n) + " " + netlist.node_name(n + 1) +
           " $end\n";
  }
  out += "$upscope $end\n$enddefinitions $end\n";

  std::vector<double> last(nodes, NAN);
  char buf[64];
  const std::size_t samples = result.node_waveforms.front().size();
  for (std::size_t s = 0; s < samples; ++s) {
    bool stamped = false;
    for (std::size_t n = 0; n < nodes; ++n) {
      const double v = result.node_waveforms[n].value(s);
      if (!std::isnan(last[n]) &&
          std::abs(v - last[n]) < options.resolution) {
        continue;
      }
      if (!stamped) {
        const double t = result.node_waveforms[n].time(s) /
                         options.time_unit;
        std::snprintf(buf, sizeof(buf), "#%lld\n",
                      static_cast<long long>(std::llround(t)));
        out += buf;
        stamped = true;
      }
      std::snprintf(buf, sizeof(buf), "r%.9g %s\n", v,
                    vcd_id(n).c_str());
      out += buf;
      last[n] = v;
    }
  }
  return out;
}

void write_vcd(const std::string& path, const Netlist& netlist,
               const TransientResult& result, const VcdOptions& options) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("write_vcd: cannot open " + path);
  file << to_vcd(netlist, result, options);
  if (!file) throw std::runtime_error("write_vcd: write failed " + path);
}

}  // namespace ntv::circuit
