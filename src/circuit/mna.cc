#include "circuit/mna.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "obs/metrics.h"
#include "simd/simd.h"

namespace ntv::circuit {

namespace {

/// Drain-source saturation scale of the tanh(Vds/vsat) output
/// characteristic. Small enough that the device delivers its full on
/// current over most of the output swing, matching the delay model's
/// D = C*V/I_on abstraction.
constexpr double kVsat = 0.05;

}  // namespace

MnaSystem::MnaSystem(const Netlist& netlist)
    : nl_(&netlist),
      transistor_(netlist.tech()),
      nodes_(netlist.node_count()),
      dim_(netlist.node_count() + netlist.vsources().size()) {
  // Absolute drive scale derived from the node card so that a unit-width
  // inverter driving the default 4 fF FO4 load reproduces the card's
  // calibrated FO4 delay at its reference point. The 0.62 factor absorbs
  // the waveform shape (finite input slew, tanh output transition) and
  // was fitted once against the 90 nm card; it is technology-independent
  // to first order because it is purely a shape factor.
  constexpr double kDefaultLoad = 4e-15;
  constexpr double kShapeFactor = 0.62;
  const auto& tech = netlist.tech();
  const double ion_ref = transistor_.ion(tech.fo4_ref_vdd, tech.vth0);
  drive_scale_ = kShapeFactor * kDefaultLoad * tech.fo4_ref_vdd /
                 (tech.fo4_ref_delay * ion_ref);
}

double MnaSystem::mosfet_current(const Mosfet& m,
                                 const std::vector<double>& x) const {
  const double vd = volt(x, m.drain);
  const double vg = volt(x, m.gate);
  const double vs = volt(x, m.source);

  // Normalize to an NMOS-like view: overdrive and drain-source drop with
  // the sign conventions of the device polarity.
  double vgs, vds, sign;
  if (m.type == MosType::kNmos) {
    vgs = vg - vs;
    vds = vd - vs;
    sign = 1.0;  // Positive current into drain when vds > 0.
  } else {
    vgs = vs - vg;
    vds = vs - vd;
    sign = -1.0;  // PMOS sources current into the drain node.
  }

  // Source/drain are symmetric: for negative vds the roles swap, which the
  // odd tanh factor captures with the gate overdrive referenced to the
  // more-negative terminal. (For the digital circuits simulated here vds
  // excursions below zero are tiny glitches.)
  const double vth = nl_->tech().vth0 + m.dvth;
  const double f = std::pow(
      device::softplus((vgs - vth) / transistor_.two_n_vt()),
      nl_->tech().alpha);
  const double t = std::tanh(vds / kVsat);
  return sign * m.width * m.drive_mult * drive_scale_ * f * t;
}

void MnaSystem::refresh_base(const std::vector<CapCompanion>& caps,
                             double gmin) const {
  // Validity check: same gmin and same companion conductances as the
  // cached base. geq changes only when the timestep (or the cap set)
  // changes, so a whole transient re-stamps the linear pattern once.
  if (base_valid_ && base_gmin_ == gmin &&
      base_geq_.size() == caps.size()) {
    bool same = true;
    for (std::size_t i = 0; i < caps.size(); ++i) {
      if (base_geq_[i] != caps[i].geq) {
        same = false;
        break;
      }
    }
    if (same) return;
  }
  obs::counter("circuit.newton.base_restamps").increment();

  if (base_g_.rows() != dim_) base_g_ = DenseMatrix(dim_, dim_);
  base_g_.clear();
  auto stamp_g = [&](NodeId a, NodeId nb, double cond) {
    if (a != kGround) base_g_.at(a - 1, a - 1) += cond;
    if (nb != kGround) base_g_.at(nb - 1, nb - 1) += cond;
    if (a != kGround && nb != kGround) {
      base_g_.at(a - 1, nb - 1) -= cond;
      base_g_.at(nb - 1, a - 1) -= cond;
    }
  };

  for (std::size_t n = 0; n < nodes_; ++n) base_g_.at(n, n) += gmin;
  for (const auto& r : nl_->resistors()) stamp_g(r.a, r.b, 1.0 / r.ohms);
  if (!caps.empty()) {
    for (std::size_t i = 0; i < nl_->capacitors().size(); ++i) {
      stamp_g(nl_->capacitors()[i].a, nl_->capacitors()[i].b, caps[i].geq);
    }
  }
  for (std::size_t k = 0; k < nl_->vsources().size(); ++k) {
    const auto& src = nl_->vsources()[k];
    const std::size_t row = nodes_ + k;
    if (src.pos != kGround) {
      base_g_.at(src.pos - 1, row) += 1.0;
      base_g_.at(row, src.pos - 1) += 1.0;
    }
    if (src.neg != kGround) {
      base_g_.at(src.neg - 1, row) -= 1.0;
      base_g_.at(row, src.neg - 1) -= 1.0;
    }
  }

  base_gmin_ = gmin;
  base_geq_.resize(caps.size());
  for (std::size_t i = 0; i < caps.size(); ++i) base_geq_[i] = caps[i].geq;
  base_valid_ = true;
}

void MnaSystem::stamp_mosfets_analytic(const std::vector<double>& x,
                                       DenseMatrix& g,
                                       std::vector<double>& b) const {
  const auto& mosfets = nl_->mosfets();
  const double vth0 = nl_->tech().vth0;
  const double alpha = nl_->tech().alpha;
  const double c = transistor_.two_n_vt();
  const auto& kern = simd::kernels();

  // The transcendental work — softplus/sigmoid of the overdrive, the
  // alpha-power law and the tanh output characteristic — is batched
  // across devices through the SIMD exp/log kernels, which cost ~2 ns
  // per element on a wide backend vs ~25 ns per libm pow+tanh pair.
  // Per-chunk staging lives on the stack; the sigmoid identity
  // ln(1+e^a) = a + ln(1+e^-a) lets one exp(-|a|) feed both softplus
  // and sigmoid with the same overflow-safe branches as the
  // device-layer scalar functions (values agree to rounding).
  constexpr std::size_t kChunk = 64;
  double a[kChunk];     // Normalized overdrive (vgs - vth) / (2 n Vt).
  double vdsn[kChunk];  // vds / vsat.
  double buf[kChunk];   // Batched-kernel input staging.
  double ea[kChunk];    // exp(-|a|).
  double onep[kChunk];  // 1 + exp(-|a|).
  double lg[kChunk];    // log(1 + exp(-|a|)).
  double sp[kChunk];    // softplus(a).
  double sg[kChunk];    // sigmoid(a).
  double fv[kChunk];    // softplus(a)^alpha.
  double tv[kChunk];    // tanh(vds / vsat).

  for (std::size_t base = 0; base < mosfets.size(); base += kChunk) {
    const std::size_t n = std::min(kChunk, mosfets.size() - base);

    for (std::size_t i = 0; i < n; ++i) {
      const Mosfet& m = mosfets[base + i];
      const double vd = volt(x, m.drain);
      const double vg = volt(x, m.gate);
      const double vs = volt(x, m.source);
      // Same normalization as mosfet_current(); see there for
      // conventions.
      double vgs, vds;
      if (m.type == MosType::kNmos) {
        vgs = vg - vs;
        vds = vd - vs;
      } else {
        vgs = vs - vg;
        vds = vs - vd;
      }
      a[i] = (vgs - (vth0 + m.dvth)) / c;
      vdsn[i] = vds / kVsat;
      buf[i] = -std::abs(a[i]);
    }

    kern.exp_batch(buf, n, ea);
    for (std::size_t i = 0; i < n; ++i) onep[i] = 1.0 + ea[i];
    kern.log_batch(onep, n, lg);
    for (std::size_t i = 0; i < n; ++i) {
      if (a[i] >= 0.0) {
        sg[i] = 1.0 / onep[i];
        sp[i] = (a[i] > 30.0) ? a[i] : a[i] + lg[i];
      } else {
        sg[i] = ea[i] / onep[i];
        sp[i] = (a[i] < -30.0) ? ea[i] : lg[i];
      }
    }

    // sp^alpha = exp(alpha * log sp). A fully-off device (sp == 0 after
    // exp underflow) flows through naturally: log -> -inf, exp -> 0.
    kern.log_batch(sp, n, buf);
    for (std::size_t i = 0; i < n; ++i) buf[i] *= alpha;
    kern.exp_batch(buf, n, fv);

    // tanh(|v|) = (1 - e^-2|v|) / (1 + e^-2|v|), sign restored after.
    for (std::size_t i = 0; i < n; ++i) buf[i] = -2.0 * std::abs(vdsn[i]);
    kern.exp_batch(buf, n, tv);
    for (std::size_t i = 0; i < n; ++i) {
      const double t = (1.0 - tv[i]) / (1.0 + tv[i]);
      tv[i] = vdsn[i] < 0.0 ? -t : t;
    }

    for (std::size_t i = 0; i < n; ++i) {
      const Mosfet& m = mosfets[base + i];
      const double sign = (m.type == MosType::kNmos) ? 1.0 : -1.0;
      const double f = fv[i];
      const double t = tv[i];
      const double k = m.width * m.drive_mult * drive_scale_;
      const double i0 = sign * k * f * t;

      // Partials wrt the normalized (vgs, vds) pair:
      //   dI/dvgs = sign*k * alpha*sp^(alpha-1)*sigmoid(a)/c * tanh
      //   dI/dvds = sign*k * f * (1 - tanh^2)/vsat
      // sp^(alpha-1) == f/sp — reuses the batched power above instead of
      // paying a second one per device per iteration (sp > 0 unless the
      // exp underflowed, where the off-state partial is 0 anyway).
      const double df_dvgs = alpha * (sp[i] > 0.0 ? f / sp[i] : 0.0) *
                             sg[i] / c;
      const double di_dvgs = sign * k * df_dvgs * t;
      const double di_dvds = sign * k * f * (1.0 - t * t) / kVsat;

      // Chain rule back to terminal voltages. For NMOS vgs = Vg - Vs and
      // vds = Vd - Vs; PMOS flips both signs.
      const double pol = sign;
      const double di_dvd_term = pol * di_dvds;
      const double di_dvg_term = pol * di_dvgs;
      const double di_dvs_term = -pol * (di_dvgs + di_dvds);

      // Per-NODE conductances, matching the numeric didv(node)
      // semantics: a node shared by several terminals (diode-connected
      // gate, etc.) sums the partials of every terminal it backs.
      auto didv = [&](NodeId node) {
        if (node == kGround) return 0.0;
        double d = 0.0;
        if (node == m.drain) d += di_dvd_term;
        if (node == m.gate) d += di_dvg_term;
        if (node == m.source) d += di_dvs_term;
        return d;
      };
      const double gd = didv(m.drain);
      const double gg = didv(m.gate);
      const double gs = didv(m.source);

      const double vd = volt(x, m.drain);
      const double vg = volt(x, m.gate);
      const double vs = volt(x, m.source);
      // Linearized drain current: i(v) = i0 + gd*(Vd-vd) + gg*(Vg-vg)...
      const double ieq = i0 - gd * vd - gg * vg - gs * vs;

      // Current i flows INTO the drain terminal and out of the source.
      if (m.drain != kGround) {
        g.at(m.drain - 1, m.drain - 1) += gd;
        if (m.gate != kGround) g.at(m.drain - 1, m.gate - 1) += gg;
        if (m.source != kGround) g.at(m.drain - 1, m.source - 1) += gs;
        b[m.drain - 1] -= ieq;
      }
      if (m.source != kGround) {
        g.at(m.source - 1, m.source - 1) -= gs;
        if (m.gate != kGround) g.at(m.source - 1, m.gate - 1) -= gg;
        if (m.drain != kGround) g.at(m.source - 1, m.drain - 1) -= gd;
        b[m.source - 1] += ieq;
      }
    }
  }
}

void MnaSystem::stamp_mosfet_numeric(const Mosfet& m,
                                     const std::vector<double>& x,
                                     DenseMatrix& g,
                                     std::vector<double>& b) const {
  constexpr double kDv = 1e-6;
  const double i0 = mosfet_current(m, x);

  // Central differences on a persistent scratch copy of the state (the
  // old implementation copied the whole vector once per terminal).
  diff_scratch_ = x;
  auto didv = [&](NodeId node) {
    if (node == kGround) return 0.0;
    const double saved = diff_scratch_[node - 1];
    diff_scratch_[node - 1] = saved + kDv;
    const double ip = mosfet_current(m, diff_scratch_);
    diff_scratch_[node - 1] = saved - kDv;
    const double im = mosfet_current(m, diff_scratch_);
    diff_scratch_[node - 1] = saved;
    return (ip - im) / (2.0 * kDv);
  };

  const double gd = didv(m.drain);
  const double gg = didv(m.gate);
  const double gs = didv(m.source);

  const double vd = volt(x, m.drain);
  const double vg = volt(x, m.gate);
  const double vs = volt(x, m.source);
  // Linearized drain current: i(v) = i0 + gd*(Vd-vd) + gg*(Vg-vg) + ...
  const double ieq = i0 - gd * vd - gg * vg - gs * vs;

  // Current i flows INTO the drain terminal and out of the source.
  if (m.drain != kGround) {
    g.at(m.drain - 1, m.drain - 1) += gd;
    if (m.gate != kGround) g.at(m.drain - 1, m.gate - 1) += gg;
    if (m.source != kGround) g.at(m.drain - 1, m.source - 1) += gs;
    b[m.drain - 1] -= ieq;
  }
  if (m.source != kGround) {
    g.at(m.source - 1, m.source - 1) -= gs;
    if (m.gate != kGround) g.at(m.source - 1, m.gate - 1) -= gg;
    if (m.drain != kGround) g.at(m.source - 1, m.drain - 1) -= gd;
    b[m.source - 1] += ieq;
  }
}

void MnaSystem::assemble(const std::vector<double>& x, double t,
                         const std::vector<CapCompanion>& caps, double gmin,
                         DenseMatrix& g, std::vector<double>& b) const {
  // Registry lookups are mutex-guarded; resolve both handles once for the
  // whole process (assemble runs hundreds of thousands of times per MC
  // study).
  static obs::Counter& assemble_ns = obs::counter("circuit.newton.assemble_ns");
  const auto assemble_start = std::chrono::steady_clock::now();

  // Linear pattern: copied from the cache, not re-stamped.
  refresh_base(caps, gmin);
  g = base_g_;
  for (auto& v : b) v = 0.0;

  // Time-dependent and state-dependent right-hand side entries.
  if (!caps.empty()) {
    for (std::size_t i = 0; i < nl_->capacitors().size(); ++i) {
      const auto& c = nl_->capacitors()[i];
      const double ieq = caps[i].ieq;
      if (c.a != kGround) b[c.a - 1] += ieq;
      if (c.b != kGround) b[c.b - 1] -= ieq;
    }
  }
  for (std::size_t k = 0; k < nl_->vsources().size(); ++k) {
    b[nodes_ + k] = nl_->vsources()[k].value(t);
  }

  // MOSFETs: the only iterate-dependent matrix stamps.
  if (jacobian_ == JacobianMode::kAnalytic) {
    stamp_mosfets_analytic(x, g, b);
  } else {
    for (const auto& m : nl_->mosfets()) {
      stamp_mosfet_numeric(m, x, g, b);
    }
  }

  assemble_ns.add(std::chrono::duration_cast<std::chrono::nanoseconds>(
                      std::chrono::steady_clock::now() - assemble_start)
                      .count());
}

}  // namespace ntv::circuit
