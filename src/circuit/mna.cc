#include "circuit/mna.h"

#include <cmath>

namespace ntv::circuit {

namespace {

/// Drain-source saturation scale of the tanh(Vds/vsat) output
/// characteristic. Small enough that the device delivers its full on
/// current over most of the output swing, matching the delay model's
/// D = C*V/I_on abstraction.
constexpr double kVsat = 0.05;

}  // namespace

MnaSystem::MnaSystem(const Netlist& netlist)
    : nl_(&netlist),
      transistor_(netlist.tech()),
      nodes_(netlist.node_count()),
      dim_(netlist.node_count() + netlist.vsources().size()) {
  // Absolute drive scale derived from the node card so that a unit-width
  // inverter driving the default 4 fF FO4 load reproduces the card's
  // calibrated FO4 delay at its reference point. The 0.62 factor absorbs
  // the waveform shape (finite input slew, tanh output transition) and
  // was fitted once against the 90 nm card; it is technology-independent
  // to first order because it is purely a shape factor.
  constexpr double kDefaultLoad = 4e-15;
  constexpr double kShapeFactor = 0.62;
  const auto& tech = netlist.tech();
  const double ion_ref = transistor_.ion(tech.fo4_ref_vdd, tech.vth0);
  drive_scale_ = kShapeFactor * kDefaultLoad * tech.fo4_ref_vdd /
                 (tech.fo4_ref_delay * ion_ref);
}

double MnaSystem::mosfet_current(const Mosfet& m,
                                 const std::vector<double>& x) const {
  const double vd = volt(x, m.drain);
  const double vg = volt(x, m.gate);
  const double vs = volt(x, m.source);

  // Normalize to an NMOS-like view: overdrive and drain-source drop with
  // the sign conventions of the device polarity.
  double vgs, vds, sign;
  if (m.type == MosType::kNmos) {
    vgs = vg - vs;
    vds = vd - vs;
    sign = 1.0;  // Positive current into drain when vds > 0.
  } else {
    vgs = vs - vg;
    vds = vs - vd;
    sign = -1.0;  // PMOS sources current into the drain node.
  }

  // Source/drain are symmetric: for negative vds the roles swap, which the
  // odd tanh factor captures with the gate overdrive referenced to the
  // more-negative terminal. (For the digital circuits simulated here vds
  // excursions below zero are tiny glitches.)
  const double vth = nl_->tech().vth0 + m.dvth;
  const double f = std::pow(
      device::softplus((vgs - vth) / transistor_.two_n_vt()),
      nl_->tech().alpha);
  const double t = std::tanh(vds / kVsat);
  return sign * m.width * m.drive_mult * drive_scale_ * f * t;
}

void MnaSystem::assemble(const std::vector<double>& x, double t,
                         const std::vector<CapCompanion>& caps, double gmin,
                         DenseMatrix& g, std::vector<double>& b) const {
  g.clear();
  for (auto& v : b) v = 0.0;

  auto stamp_g = [&](NodeId a, NodeId nb, double cond) {
    if (a != kGround) g.at(a - 1, a - 1) += cond;
    if (nb != kGround) g.at(nb - 1, nb - 1) += cond;
    if (a != kGround && nb != kGround) {
      g.at(a - 1, nb - 1) -= cond;
      g.at(nb - 1, a - 1) -= cond;
    }
  };
  auto stamp_i = [&](NodeId into, double amps) {
    if (into != kGround) b[into - 1] += amps;
  };

  for (std::size_t n = 0; n < nodes_; ++n) g.at(n, n) += gmin;

  for (const auto& r : nl_->resistors()) stamp_g(r.a, r.b, 1.0 / r.ohms);

  // Capacitors: trapezoidal companion (conductance + current source).
  if (!caps.empty()) {
    for (std::size_t i = 0; i < nl_->capacitors().size(); ++i) {
      const auto& c = nl_->capacitors()[i];
      const auto& comp = caps[i];
      stamp_g(c.a, c.b, comp.geq);
      stamp_i(c.a, comp.ieq);
      stamp_i(c.b, -comp.ieq);
    }
  }

  // Voltage sources: extra branch-current unknowns.
  for (std::size_t k = 0; k < nl_->vsources().size(); ++k) {
    const auto& src = nl_->vsources()[k];
    const std::size_t row = nodes_ + k;
    if (src.pos != kGround) {
      g.at(src.pos - 1, row) += 1.0;
      g.at(row, src.pos - 1) += 1.0;
    }
    if (src.neg != kGround) {
      g.at(src.neg - 1, row) -= 1.0;
      g.at(row, src.neg - 1) -= 1.0;
    }
    b[row] = src.value(t);
  }

  // MOSFETs: numeric linearization (central differences). The circuits
  // are tiny, so the extra evaluations are irrelevant and this keeps the
  // device model trivially consistent with mosfet_current().
  constexpr double kDv = 1e-6;
  for (const auto& m : nl_->mosfets()) {
    const double i0 = mosfet_current(m, x);

    auto didv = [&](NodeId node) {
      if (node == kGround) return 0.0;
      std::vector<double> xp = x;
      xp[node - 1] += kDv;
      const double ip = mosfet_current(m, xp);
      xp[node - 1] -= 2.0 * kDv;
      const double im = mosfet_current(m, xp);
      return (ip - im) / (2.0 * kDv);
    };

    const double gd = didv(m.drain);
    const double gg = didv(m.gate);
    const double gs = didv(m.source);

    const double vd = volt(x, m.drain);
    const double vg = volt(x, m.gate);
    const double vs = volt(x, m.source);
    // Linearized drain current: i(v) = i0 + gd*(Vd-vd) + gg*(Vg-vg) + ...
    const double ieq = i0 - gd * vd - gg * vg - gs * vs;

    // Current i flows INTO the drain terminal and out of the source.
    if (m.drain != kGround) {
      g.at(m.drain - 1, m.drain - 1) += gd;
      if (m.gate != kGround) g.at(m.drain - 1, m.gate - 1) += gg;
      if (m.source != kGround) g.at(m.drain - 1, m.source - 1) += gs;
      b[m.drain - 1] -= ieq;
    }
    if (m.source != kGround) {
      g.at(m.source - 1, m.source - 1) -= gs;
      if (m.gate != kGround) g.at(m.source - 1, m.gate - 1) -= gg;
      if (m.drain != kGround) g.at(m.source - 1, m.drain - 1) -= gd;
      b[m.source - 1] += ieq;
    }
  }
}

}  // namespace ntv::circuit
