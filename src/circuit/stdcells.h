// Small standard-cell library on top of the MOSFET primitives.
//
// Besides the inverter chains the paper characterizes, real SIMD
// datapaths are built from multi-input gates whose stacked devices make
// them *more* variation-sensitive (two series near-threshold transistors
// share one Vth-limited headroom). These builders let tests and studies
// quantify that at the circuit level.
#pragma once

#include "circuit/netlist.h"
#include "device/variation.h"

namespace ntv::circuit {

/// Per-device variation of one two-input cell.
struct Cell2Var {
  device::GateVar nmos_a;
  device::GateVar nmos_b;
  device::GateVar pmos_a;
  device::GateVar pmos_b;
};

/// Adds an inverter; returns its output node. Width ratio 2:1 (P:N).
NodeId add_inverter(Netlist& netlist, NodeId vdd, NodeId input,
                    double load_cap, const device::GateVar& nmos_var = {},
                    const device::GateVar& pmos_var = {});

/// Adds a 2-input NAND (series NMOS stack, parallel PMOS); returns the
/// output node. NMOS devices are double-width to balance the stack.
NodeId add_nand2(Netlist& netlist, NodeId vdd, NodeId a, NodeId b,
                 double load_cap, const Cell2Var& var = {});

/// Adds a 2-input NOR (parallel NMOS, series PMOS stack); returns the
/// output node. PMOS devices are quadruple-width to balance the stack.
NodeId add_nor2(Netlist& netlist, NodeId vdd, NodeId a, NodeId b,
                double load_cap, const Cell2Var& var = {});

/// DC truth-table check helper: returns the settled output voltage of the
/// cell produced by `build` for the given input levels. The `build`
/// callback receives (netlist, vdd_node, a_node, b_node) and must return
/// the output node.
double dc_output(const device::TechNode& tech, double vdd, bool a, bool b,
                 NodeId (*build)(Netlist&, NodeId, NodeId, NodeId));

}  // namespace ntv::circuit
