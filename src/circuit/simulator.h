// DC operating point and transient analysis.
#pragma once

#include <vector>

#include "circuit/mna.h"
#include "circuit/netlist.h"
#include "circuit/waveform.h"

namespace ntv::circuit {

/// Newton-iteration options.
struct NewtonOptions {
  int max_iterations = 100;
  double abs_tol = 1e-9;     ///< Convergence threshold on max |dV|.
  double damping = 0.3;      ///< Max per-iteration voltage step [V].
  double gmin = 1e-9;        ///< Node-to-ground leak conductance [S].
};

/// Result of a DC solve.
struct DcResult {
  bool converged = false;
  int iterations = 0;
  std::vector<double> x;  ///< Solution vector (nodes then branch currents).
};

/// Solves the DC operating point at time `t` (sources evaluated at t,
/// capacitors open).
DcResult dc_operating_point(const Netlist& netlist, double t = 0.0,
                            const NewtonOptions& opt = {});

/// Transient options (fixed-step trapezoidal integration).
struct TransientOptions {
  double t_stop = 1e-9;
  double dt = 1e-12;
  bool dc_init = true;  ///< Start from the DC operating point at t=0.
  NewtonOptions newton;
};

/// Result of a transient analysis: one waveform per non-ground node.
struct TransientResult {
  bool ok = false;
  std::vector<Waveform> node_waveforms;  ///< Index node_id - 1.

  const Waveform& at(NodeId node) const { return node_waveforms.at(node - 1); }
};

/// Runs a fixed-step trapezoidal transient with Newton at each step.
TransientResult transient(const Netlist& netlist,
                          const TransientOptions& opt);

}  // namespace ntv::circuit
