// Small dense linear algebra for MNA systems.
//
// Circuit matrices here are tiny (tens of nodes), so a dense LU with
// partial pivoting is the right tool — no sparse machinery needed.
#pragma once

#include <cstddef>
#include <vector>

namespace ntv::circuit {

/// Row-major dense matrix.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }

  double& at(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double at(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Sets every entry to zero (keeps dimensions).
  void clear() noexcept;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves A x = b in place by LU with partial pivoting. A is overwritten.
/// Returns false when the matrix is numerically singular.
bool lu_solve(DenseMatrix& a, std::vector<double>& b);

}  // namespace ntv::circuit
