#include "circuit/linear.h"

#include <cmath>
#include <stdexcept>

namespace ntv::circuit {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

void DenseMatrix::clear() noexcept {
  for (auto& v : data_) v = 0.0;
}

bool lu_solve(DenseMatrix& a, std::vector<double>& b) {
  const std::size_t n = a.rows();
  if (a.cols() != n || b.size() != n)
    throw std::invalid_argument("lu_solve: dimension mismatch");

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting. Row swaps are applied to b eagerly, so no
    // permutation vector needs to be kept.
    std::size_t pivot = k;
    double best = std::abs(a.at(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::abs(a.at(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best < 1e-300) return false;
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a.at(k, j), a.at(pivot, j));
      }
      std::swap(b[k], b[pivot]);
    }
    const double inv = 1.0 / a.at(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a.at(i, k) * inv;
      if (factor == 0.0) continue;
      a.at(i, k) = factor;
      for (std::size_t j = k + 1; j < n; ++j) {
        a.at(i, j) -= factor * a.at(k, j);
      }
      b[i] -= factor * b[k];
    }
  }

  // Back substitution.
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= a.at(i, j) * b[j];
    b[i] = sum / a.at(i, i);
  }
  return true;
}

}  // namespace ntv::circuit
