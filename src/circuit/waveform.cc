#include "circuit/waveform.h"

namespace ntv::circuit {

std::optional<double> Waveform::crossing(double level, bool rising,
                                         double after) const noexcept {
  for (std::size_t i = 1; i < samples_.size(); ++i) {
    const double t1 = time(i);
    if (t1 < after) continue;
    const double v0 = samples_[i - 1];
    const double v1 = samples_[i];
    const bool crossed = rising ? (v0 < level && v1 >= level)
                                : (v0 > level && v1 <= level);
    if (!crossed) continue;
    const double frac = (level - v0) / (v1 - v0);
    return time(i - 1) + frac * dt_;
  }
  return std::nullopt;
}

}  // namespace ntv::circuit
