// Circuit netlist: nodes and elements.
//
// A deliberately small SPICE-like representation, sufficient for the
// structures the paper simulates: FO4 inverter chains and ring oscillators
// built from the transregional MOSFET model, with per-device threshold
// shifts so circuit-level Monte Carlo matches the statistical model.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "device/tech_node.h"

namespace ntv::circuit {

/// Node handle; kGround (node 0) is the reference.
using NodeId = std::size_t;
inline constexpr NodeId kGround = 0;

/// Two-terminal linear resistor.
struct Resistor {
  NodeId a = kGround;
  NodeId b = kGround;
  double ohms = 1.0;
};

/// Two-terminal linear capacitor.
struct Capacitor {
  NodeId a = kGround;
  NodeId b = kGround;
  double farads = 1e-15;
  double initial_volts = 0.0;  ///< Initial condition used by transient.
};

/// Piecewise-linear voltage source between node `pos` and ground reference
/// node `neg`. With an empty waveform the source holds `dc` forever.
struct VSource {
  NodeId pos = kGround;
  NodeId neg = kGround;
  double dc = 0.0;
  /// Sorted (time, volts) breakpoints; value is held outside the range.
  std::vector<std::pair<double, double>> pwl;

  /// Source value at time t.
  double value(double t) const noexcept;
};

/// MOSFET polarity.
enum class MosType { kNmos, kPmos };

/// Quasi-static MOSFET using the transregional on-current model:
///   |Ids| = width * K * softplus((|Vgs|-Vth)/(2 n vT))^alpha
///           * tanh(|Vds| / vsat)
/// with per-instance threshold shift (process variation) and drive
/// multiplier. Gate capacitance is not modeled inside the device; lump it
/// as explicit capacitors (the gate builders do this).
struct Mosfet {
  MosType type = MosType::kNmos;
  NodeId drain = kGround;
  NodeId gate = kGround;
  NodeId source = kGround;
  double width = 1.0;       ///< Relative drive strength.
  double dvth = 0.0;        ///< Per-instance threshold shift [V].
  double drive_mult = 1.0;  ///< Per-instance multiplicative drive factor.
};

/// The netlist: a bag of elements over a set of nodes.
class Netlist {
 public:
  /// Creates a netlist for devices of the given technology node.
  explicit Netlist(const device::TechNode& tech) : tech_(&tech) {}

  /// Allocates a new node; `name` is for diagnostics only.
  NodeId add_node(std::string name = {});

  void add_resistor(NodeId a, NodeId b, double ohms);
  void add_capacitor(NodeId a, NodeId b, double farads,
                     double initial_volts = 0.0);
  /// Returns the index of the added source (for waveform updates).
  std::size_t add_vsource(NodeId pos, NodeId neg, double dc);
  std::size_t add_vsource_pwl(NodeId pos, NodeId neg,
                              std::vector<std::pair<double, double>> pwl);
  void add_mosfet(const Mosfet& m);

  /// Number of non-ground nodes (node ids run 0..node_count()).
  std::size_t node_count() const noexcept { return names_.size() - 1; }
  const std::string& node_name(NodeId n) const { return names_.at(n); }

  const device::TechNode& tech() const noexcept { return *tech_; }
  const std::vector<Resistor>& resistors() const noexcept { return r_; }
  const std::vector<Capacitor>& capacitors() const noexcept { return c_; }
  const std::vector<VSource>& vsources() const noexcept { return v_; }
  std::vector<VSource>& vsources() noexcept { return v_; }
  const std::vector<Mosfet>& mosfets() const noexcept { return m_; }
  std::vector<Mosfet>& mosfets() noexcept { return m_; }

 private:
  const device::TechNode* tech_;
  std::vector<std::string> names_{"gnd"};
  std::vector<Resistor> r_;
  std::vector<Capacitor> c_;
  std::vector<VSource> v_;
  std::vector<Mosfet> m_;
};

}  // namespace ntv::circuit
