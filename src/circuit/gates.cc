#include "circuit/gates.h"

#include <cmath>
#include <stdexcept>

#include "device/gate_delay.h"

namespace ntv::circuit {

Netlist build_inverter_chain(const device::TechNode& tech,
                             const ChainConfig& config, NodeId* input,
                             NodeId* output,
                             std::vector<NodeId>* stage_outputs) {
  if (config.stages < 1)
    throw std::invalid_argument("build_inverter_chain: stages must be >= 1");
  if (!config.variation.empty() &&
      config.variation.size() != static_cast<std::size_t>(config.stages))
    throw std::invalid_argument(
        "build_inverter_chain: variation size must match stages");

  Netlist nl(tech);
  const NodeId vdd = nl.add_node("vdd");
  nl.add_vsource(vdd, kGround, config.vdd);

  const NodeId in = nl.add_node("in");
  if (input) *input = in;

  NodeId prev = in;
  for (int s = 0; s < config.stages; ++s) {
    const NodeId out = nl.add_node("s" + std::to_string(s));
    InverterVar var;
    if (!config.variation.empty())
      var = config.variation[static_cast<std::size_t>(s)];

    Mosfet n;
    n.type = MosType::kNmos;
    n.drain = out;
    n.gate = prev;
    n.source = kGround;
    n.width = config.nmos_width;
    n.dvth = var.nmos.dvth;
    n.drive_mult = 1.0 + var.nmos.mult;
    nl.add_mosfet(n);

    Mosfet p;
    p.type = MosType::kPmos;
    p.drain = out;
    p.gate = prev;
    p.source = vdd;
    p.width = config.pmos_width;
    p.dvth = var.pmos.dvth;
    p.drive_mult = 1.0 + var.pmos.mult;
    nl.add_mosfet(p);

    nl.add_capacitor(out, kGround, config.load_cap);
    if (stage_outputs) stage_outputs->push_back(out);
    prev = out;
  }
  if (output) *output = prev;
  return nl;
}

ChainTiming measure_chain(const device::TechNode& tech,
                          const ChainConfig& config,
                          const TransientOptions* opt_in) {
  NodeId in = kGround, out = kGround;
  std::vector<NodeId> stage_nodes;
  Netlist nl = build_inverter_chain(tech, config, &in, &out, &stage_nodes);

  // Analytic per-stage estimate sets the simulation horizon and step.
  const device::GateDelayModel model(tech);
  const double est = model.fo4_delay(config.vdd);

  TransientOptions opt;
  if (opt_in) {
    opt = *opt_in;
  } else {
    opt.dt = est / 50.0;
    // Variation can slow stages several-fold in the worst tail; 8x the
    // nominal total leaves room.
    opt.t_stop = est * static_cast<double>(config.stages) * 8.0 + 100.0 * opt.dt;
  }

  // Rising step on the input shortly after t=0 (two steps of lead time let
  // the chain settle into its DC state first).
  const double t_step = 2.0 * opt.dt;
  nl.add_vsource_pwl(in, kGround,
                     {{0.0, 0.0},
                      {t_step, 0.0},
                      {t_step + opt.dt, config.vdd}});

  ChainTiming timing;
  const TransientResult tr = transient(nl, opt);
  if (!tr.ok) return timing;

  const double half = config.vdd / 2.0;
  const auto t_in = tr.at(in).crossing(half, /*rising=*/true);
  if (!t_in) return timing;

  double t_prev = *t_in;
  bool rising_out = false;  // First inverter output falls on a rising input.
  for (std::size_t s = 0; s < stage_nodes.size(); ++s) {
    const auto t_cross =
        tr.at(stage_nodes[s]).crossing(half, rising_out, t_prev);
    if (!t_cross) return timing;
    timing.stage_delays.push_back(*t_cross - t_prev);
    t_prev = *t_cross;
    rising_out = !rising_out;
  }
  timing.total_delay = t_prev - *t_in;
  timing.ok = true;
  return timing;
}

double fo4_delay_spice(const device::TechNode& tech, double vdd,
                       double load_cap) {
  // A 4-stage chain: measure the average of stage 2 and 3 delays (one
  // falling, one rising transition in settled surroundings).
  ChainConfig config;
  config.stages = 4;
  config.vdd = vdd;
  config.load_cap = load_cap;
  const ChainTiming timing = measure_chain(tech, config);
  if (!timing.ok) return 0.0;
  return 0.5 * (timing.stage_delays[1] + timing.stage_delays[2]);
}

double ring_oscillator_period(const device::TechNode& tech, int stages,
                              double vdd, double load_cap) {
  if (stages < 3 || stages % 2 == 0)
    throw std::invalid_argument(
        "ring_oscillator_period: need an odd stage count >= 3");

  Netlist nl(tech);
  const NodeId vdd_node = nl.add_node("vdd");
  nl.add_vsource(vdd_node, kGround, vdd);

  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(stages));
  for (int s = 0; s < stages; ++s) nodes.push_back(nl.add_node());

  for (int s = 0; s < stages; ++s) {
    const NodeId in = nodes[static_cast<std::size_t>(s)];
    const NodeId out = nodes[static_cast<std::size_t>((s + 1) % stages)];
    Mosfet n{MosType::kNmos, out, in, kGround, 1.0, 0.0, 1.0};
    Mosfet p{MosType::kPmos, out, in, vdd_node, 2.0, 0.0, 1.0};
    nl.add_mosfet(n);
    nl.add_mosfet(p);
    // Kick the first node low initially to break the metastable DC point.
    const double init = (s == 0) ? 0.0 : vdd / 2.0;
    nl.add_capacitor(out, kGround, load_cap, init);
  }

  const device::GateDelayModel model(tech);
  const double est = model.fo4_delay(vdd);
  TransientOptions opt;
  opt.dt = est / 40.0;
  opt.t_stop = est * static_cast<double>(stages) * 12.0;
  opt.dc_init = false;  // A DC solve would settle at the metastable point.

  const TransientResult tr = transient(nl, opt);
  if (!tr.ok) return 0.0;

  // Period = time between consecutive rising crossings of one node, after
  // skipping the start-up transient (first third of the run).
  const auto& w = tr.at(nodes[0]);
  const double settle = opt.t_stop / 3.0;
  const auto c1 = w.crossing(vdd / 2.0, true, settle);
  if (!c1) return 0.0;
  const auto c2 = w.crossing(vdd / 2.0, true, *c1 + opt.dt);
  if (!c2) return 0.0;
  return *c2 - *c1;
}

}  // namespace ntv::circuit
