// Modified nodal analysis assembly.
//
// Unknown vector layout: [v_1 .. v_N, i_vsrc_1 .. i_vsrc_M] where node 0 is
// ground. Nonlinear MOSFETs are linearized around the current iterate
// (Newton-Raphson); capacitors enter through trapezoidal companion models
// supplied by the transient loop.
#pragma once

#include <vector>

#include "circuit/linear.h"
#include "circuit/netlist.h"
#include "device/transistor.h"

namespace ntv::circuit {

/// Capacitor companion state for the trapezoidal rule.
struct CapCompanion {
  double geq = 0.0;  ///< 2C/h.
  double ieq = 0.0;  ///< geq*v_prev + i_prev.
};

/// Assembles and evaluates the MNA system for one netlist.
class MnaSystem {
 public:
  explicit MnaSystem(const Netlist& netlist);

  /// System dimension: nodes + voltage-source branch currents.
  std::size_t dimension() const noexcept { return dim_; }
  std::size_t node_count() const noexcept { return nodes_; }

  /// Builds G and b for the current Newton iterate `x` at time `t`.
  /// `caps` supplies trapezoidal companions (empty span = DC analysis,
  /// capacitors open). `gmin` is a convergence-aiding conductance from
  /// every node to ground.
  void assemble(const std::vector<double>& x, double t,
                const std::vector<CapCompanion>& caps, double gmin,
                DenseMatrix& g, std::vector<double>& b) const;

  /// Drain current flowing into the MOSFET's drain terminal, given node
  /// voltages of the iterate. Exposed for power/leakage queries and tests.
  double mosfet_current(const Mosfet& m, const std::vector<double>& x) const;

 private:
  double volt(const std::vector<double>& x, NodeId n) const {
    return n == kGround ? 0.0 : x[n - 1];
  }

  const Netlist* nl_;
  device::TransistorModel transistor_;
  std::size_t nodes_;
  std::size_t dim_;
  double drive_scale_;  ///< Per-node ampere scale, see mna.cc.
};

}  // namespace ntv::circuit
