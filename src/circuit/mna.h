// Modified nodal analysis assembly.
//
// Unknown vector layout: [v_1 .. v_N, i_vsrc_1 .. i_vsrc_M] where node 0 is
// ground. Nonlinear MOSFETs are linearized around the current iterate
// (Newton-Raphson); capacitors enter through trapezoidal companion models
// supplied by the transient loop.
#pragma once

#include <vector>

#include "circuit/linear.h"
#include "circuit/netlist.h"
#include "device/transistor.h"

namespace ntv::circuit {

/// Capacitor companion state for the trapezoidal rule.
struct CapCompanion {
  double geq = 0.0;  ///< 2C/h.
  double ieq = 0.0;  ///< geq*v_prev + i_prev.
};

/// How the MOSFET stamps are linearized around the Newton iterate.
enum class JacobianMode {
  /// Closed-form partial derivatives of the softplus^alpha * tanh device
  /// model — one current evaluation per device per iteration. The
  /// default and the fast path.
  kAnalytic,
  /// Central differences of mosfet_current() (the original
  /// implementation, kept as the reference the device-model tests compare
  /// the analytic stamps against). Uses a persistent scratch vector, not
  /// a per-terminal copy of the state.
  kNumeric,
};

/// Assembles and evaluates the MNA system for one netlist.
///
/// The linear, iterate-independent stamps (gmin diagonal, resistors,
/// voltage-source incidence, capacitor companion conductances) are cached
/// in a base matrix and re-stamped only when gmin or the companion
/// conductances change (DC gmin stepping, a new timestep size); each
/// Newton iteration copies the base and adds only the nonlinear MOSFET
/// stamps and the time-dependent right-hand side.
///
/// Not thread-safe per instance (the stamp cache and numeric-diff scratch
/// are reused across calls); use one MnaSystem per concurrent solve, as
/// the simulator does.
class MnaSystem {
 public:
  explicit MnaSystem(const Netlist& netlist);

  /// System dimension: nodes + voltage-source branch currents.
  std::size_t dimension() const noexcept { return dim_; }
  std::size_t node_count() const noexcept { return nodes_; }

  /// Builds G and b for the current Newton iterate `x` at time `t`.
  /// `caps` supplies trapezoidal companions (empty span = DC analysis,
  /// capacitors open). `gmin` is a convergence-aiding conductance from
  /// every node to ground.
  void assemble(const std::vector<double>& x, double t,
                const std::vector<CapCompanion>& caps, double gmin,
                DenseMatrix& g, std::vector<double>& b) const;

  /// Selects the MOSFET linearization (default: analytic).
  void set_jacobian_mode(JacobianMode mode) noexcept { jacobian_ = mode; }
  JacobianMode jacobian_mode() const noexcept { return jacobian_; }

  /// Drain current flowing into the MOSFET's drain terminal, given node
  /// voltages of the iterate. Exposed for power/leakage queries and tests.
  double mosfet_current(const Mosfet& m, const std::vector<double>& x) const;

 private:
  double volt(const std::vector<double>& x, NodeId n) const {
    return n == kGround ? 0.0 : x[n - 1];
  }

  /// Rebuilds base_g_ when gmin or the companion conductances changed.
  void refresh_base(const std::vector<CapCompanion>& caps, double gmin) const;

  /// Adds every MOSFET's linearized stamps to (g, b), batching the
  /// transcendental evaluations (exp/log) across devices through the
  /// SIMD kernel layer. Same linearization as the old per-device path;
  /// values agree with the numeric Jacobian to solver tolerance.
  void stamp_mosfets_analytic(const std::vector<double>& x, DenseMatrix& g,
                              std::vector<double>& b) const;
  void stamp_mosfet_numeric(const Mosfet& m, const std::vector<double>& x,
                            DenseMatrix& g, std::vector<double>& b) const;

  const Netlist* nl_;
  device::TransistorModel transistor_;
  std::size_t nodes_;
  std::size_t dim_;
  double drive_scale_;  ///< Per-node ampere scale, see mna.cc.
  JacobianMode jacobian_ = JacobianMode::kAnalytic;

  /// Cached linear stamps: gmin + resistors + vsource incidence + cap
  /// companion conductances, valid while (base_gmin_, base_geq_) match.
  mutable DenseMatrix base_g_;
  mutable double base_gmin_ = -1.0;
  mutable std::vector<double> base_geq_;
  mutable bool base_valid_ = false;
  /// Numeric-diff scratch (replaces the per-terminal state-vector copy).
  mutable std::vector<double> diff_scratch_;
};

}  // namespace ntv::circuit
