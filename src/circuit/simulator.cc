#include "circuit/simulator.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace ntv::circuit {

namespace {

/// Scratch reused across Newton solves: the G matrix, RHS, candidate
/// solution, and the per-node damping state. Hoisted out of newton_solve
/// so one allocation set serves every gmin step of a DC solve and every
/// timestep of a transient.
struct NewtonWorkspace {
  DenseMatrix g;
  std::vector<double> b;
  std::vector<double> x_new;
  std::vector<double> cap;
  std::vector<double> last_dx;

  void prepare(std::size_t dim, double damping) {
    if (g.rows() != dim) g = DenseMatrix(dim, dim);
    b.resize(dim);
    x_new.resize(dim);
    cap.assign(dim, damping);
    last_dx.assign(dim, 0.0);
  }
};

/// One Newton solve of the (possibly companion-augmented) system at time t.
/// `x` holds the initial guess on entry and the solution on success.
bool newton_solve(const MnaSystem& sys, double t,
                  const std::vector<CapCompanion>& caps,
                  const NewtonOptions& opt, NewtonWorkspace& ws,
                  std::vector<double>& x, int* iterations_out) {
  const std::size_t dim = sys.dimension();
  // Per-node step caps with oscillation detection: Newton on saturating
  // device characteristics (tanh output stage) overshoots and would bounce
  // at a fixed damping cap forever, so a node whose update flips sign gets
  // its cap halved, and consistent directions earn it back. The damping
  // state is reset per solve; the buffers keep their capacity.
  ws.prepare(dim, opt.damping);
  DenseMatrix& g = ws.g;
  std::vector<double>& b = ws.b;
  std::vector<double>& x_new = ws.x_new;
  std::vector<double>& cap = ws.cap;
  std::vector<double>& last_dx = ws.last_dx;

  // Registry lookups are mutex-guarded; resolve once and bump relaxed
  // atomics in the iteration loop.
  static obs::Counter& newton_iters = obs::counter("spice.newton_iters");
  static obs::Counter& total_iters =
      obs::counter("circuit.newton.iterations");
  static obs::Counter& factorizations =
      obs::counter("solver.factorizations");

  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    newton_iters.increment();
    total_iters.increment();
    sys.assemble(x, t, caps, opt.gmin, g, b);
    x_new = b;
    factorizations.increment();
    if (!lu_solve(g, x_new)) return false;

    double max_dv = 0.0;
    for (std::size_t i = 0; i < dim; ++i) {
      double dx = x_new[i] - x[i];
      if (i < sys.node_count()) {
        if (dx * last_dx[i] < 0.0) {
          cap[i] = std::max(cap[i] * 0.5, 1e-12);
        } else {
          cap[i] = std::min(cap[i] * 1.5, opt.damping);
        }
        dx = std::clamp(dx, -cap[i], cap[i]);
        last_dx[i] = dx;
        max_dv = std::max(max_dv, std::abs(dx));
      }
      x[i] += dx;
    }
    if (iterations_out) *iterations_out = iter + 1;
    if (max_dv < opt.abs_tol) return true;
  }
  return false;
}

/// DC solve against an existing system + workspace, so the transient's
/// DC initialization shares the caller's buffers and stamp cache.
DcResult dc_solve(const MnaSystem& sys, double t, const NewtonOptions& opt,
                  NewtonWorkspace& ws) {
  static obs::Counter& dc_solves = obs::counter("spice.dc_solves");
  static obs::Timer& dc_timer = obs::timer("spice.dc");
  dc_solves.increment();
  obs::ScopedTimer timer(dc_timer);
  DcResult result;
  result.x.assign(sys.dimension(), 0.0);

  // Gmin stepping: solve with a strong leak first, then relax it. This
  // reliably converges the rail-to-rail DC points of inverter chains.
  const std::vector<CapCompanion> no_caps;
  for (double gmin : {1e-3, 1e-5, 1e-7, opt.gmin}) {
    NewtonOptions step_opt = opt;
    step_opt.gmin = std::max(gmin, opt.gmin);
    int iters = 0;
    result.converged =
        newton_solve(sys, t, no_caps, step_opt, ws, result.x, &iters);
    result.iterations += iters;
    if (!result.converged) return result;
  }
  return result;
}

}  // namespace

DcResult dc_operating_point(const Netlist& netlist, double t,
                            const NewtonOptions& opt) {
  MnaSystem sys(netlist);
  NewtonWorkspace ws;
  return dc_solve(sys, t, opt, ws);
}

TransientResult transient(const Netlist& netlist, const TransientOptions& opt) {
  static obs::Counter& transient_runs = obs::counter("spice.transient_runs");
  static obs::Timer& transient_timer = obs::timer("spice.transient");
  static obs::Counter& timesteps = obs::counter("spice.timesteps");
  transient_runs.increment();
  obs::ScopedTimer timer(transient_timer);
  MnaSystem sys(netlist);
  NewtonWorkspace ws;
  TransientResult result;
  const std::size_t nodes = netlist.node_count();

  std::vector<double> x(sys.dimension(), 0.0);
  if (opt.dc_init) {
    DcResult dc = dc_solve(sys, 0.0, opt.newton, ws);
    if (!dc.converged) return result;
    x = dc.x;
  } else {
    // Honor capacitor initial conditions as node guesses.
    for (const auto& c : netlist.capacitors()) {
      if (c.a != kGround) x[c.a - 1] = c.initial_volts;
    }
  }

  auto volt = [&](NodeId n) { return n == kGround ? 0.0 : x[n - 1]; };

  // Initialize companion states from the initial solution.
  const std::size_t nc = netlist.capacitors().size();
  std::vector<double> v_prev(nc), i_prev(nc, 0.0);
  std::vector<CapCompanion> caps(nc);
  for (std::size_t i = 0; i < nc; ++i) {
    const auto& c = netlist.capacitors()[i];
    v_prev[i] = volt(c.a) - volt(c.b);
  }

  result.node_waveforms.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    result.node_waveforms.emplace_back(0.0, opt.dt);
    result.node_waveforms.back().push(x[n]);
  }

  const auto steps = static_cast<std::size_t>(std::ceil(opt.t_stop / opt.dt));
  // Linear predictor state: the previous accepted solution. Seeding each
  // Newton solve with the extrapolation x + (x - x_prev) instead of the
  // raw previous solution tracks the waveform slope, cutting iterations
  // on the smooth segments that dominate a transient. Newton converges to
  // the same abs_tol fixed point either way; only the start point moves.
  std::vector<double> x_step_prev = x;
  std::vector<double> x_step_prev2 = x;
  for (std::size_t s = 1; s <= steps; ++s) {
    timesteps.increment();
    const double t = opt.dt * static_cast<double>(s);
    for (std::size_t i = 0; i < nc; ++i) {
      const double geq = 2.0 * netlist.capacitors()[i].farads / opt.dt;
      caps[i].geq = geq;
      caps[i].ieq = geq * v_prev[i] + i_prev[i];
    }
    if (s >= 3) {
      // Quadratic extrapolation through the last three accepted points.
      for (std::size_t i = 0; i < x.size(); ++i) {
        const double xi = x[i];
        x[i] = 3.0 * xi - 3.0 * x_step_prev[i] + x_step_prev2[i];
        x_step_prev2[i] = x_step_prev[i];
        x_step_prev[i] = xi;
      }
    } else if (s == 2) {
      for (std::size_t i = 0; i < x.size(); ++i) {
        const double xi = x[i];
        x[i] = xi + (xi - x_step_prev[i]);
        x_step_prev2[i] = x_step_prev[i];
        x_step_prev[i] = xi;
      }
    }
    if (!newton_solve(sys, t, caps, opt.newton, ws, x, nullptr)) {
      return result;  // ok stays false.
    }
    for (std::size_t i = 0; i < nc; ++i) {
      const auto& c = netlist.capacitors()[i];
      const double v_now = volt(c.a) - volt(c.b);
      // Trapezoidal branch current update: i = geq*(v - v_prev) - i_prev.
      i_prev[i] = caps[i].geq * (v_now - v_prev[i]) - i_prev[i];
      v_prev[i] = v_now;
    }
    for (std::size_t n = 0; n < nodes; ++n) {
      result.node_waveforms[n].push(x[n]);
    }
  }
  result.ok = true;
  return result;
}

}  // namespace ntv::circuit
