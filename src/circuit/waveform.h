// Sampled waveforms and timing measurements.
#pragma once

#include <optional>
#include <vector>

namespace ntv::circuit {

/// A uniformly-sampled voltage waveform.
class Waveform {
 public:
  Waveform(double t0, double dt) : t0_(t0), dt_(dt) {}

  void push(double v) { samples_.push_back(v); }
  std::size_t size() const noexcept { return samples_.size(); }
  double time(std::size_t i) const noexcept {
    return t0_ + dt_ * static_cast<double>(i);
  }
  double value(std::size_t i) const { return samples_.at(i); }
  const std::vector<double>& samples() const noexcept { return samples_; }

  /// First time the waveform crosses `level` in the given direction,
  /// starting the search at `after`. Linear interpolation between samples.
  /// Returns nullopt if no crossing is found.
  std::optional<double> crossing(double level, bool rising,
                                 double after = 0.0) const noexcept;

  /// Final value of the waveform (steady state when simulated long enough).
  double last() const { return samples_.back(); }

 private:
  double t0_;
  double dt_;
  std::vector<double> samples_;
};

}  // namespace ntv::circuit
