// Gate-level circuit builders: inverters, FO4 chains, ring oscillators.
//
// These are the structures the paper characterizes with HSPICE. The
// builders assemble them from the MOSFET primitives, drive them with a
// step input, and measure 50%-crossing delays, optionally with per-device
// process variation injected — giving a circuit-level Monte Carlo that
// validates the closed-form statistical model.
#pragma once

#include <vector>

#include "circuit/netlist.h"
#include "circuit/simulator.h"
#include "device/variation.h"

namespace ntv::circuit {

/// Per-stage process variation of one inverter.
struct InverterVar {
  device::GateVar nmos;
  device::GateVar pmos;
};

/// Configuration of an FO4 inverter chain experiment.
struct ChainConfig {
  int stages = 5;
  double vdd = 1.0;
  double load_cap = 4e-15;      ///< FO4 load per stage output [F].
  double nmos_width = 1.0;
  double pmos_width = 2.0;      ///< Classic 2:1 P/N sizing.
  /// Optional per-stage variation; empty = nominal. Size must equal
  /// `stages` when non-empty.
  std::vector<InverterVar> variation;
};

/// Measured chain timing.
struct ChainTiming {
  bool ok = false;
  /// 50%-crossing delay of each stage [s].
  std::vector<double> stage_delays;
  /// Input 50%-crossing to last-output 50%-crossing [s].
  double total_delay = 0.0;
};

/// Builds the chain netlist. `input`/`output` receive the boundary nodes;
/// `stage_outputs` (optional) receives each stage's output node.
Netlist build_inverter_chain(const device::TechNode& tech,
                             const ChainConfig& config, NodeId* input,
                             NodeId* output,
                             std::vector<NodeId>* stage_outputs = nullptr);

/// Simulates a rising step into the chain and measures stage delays.
/// Simulation horizon and step are auto-derived from the analytic delay
/// model estimate unless overridden via `opt` (pass nullptr for auto).
ChainTiming measure_chain(const device::TechNode& tech,
                          const ChainConfig& config,
                          const TransientOptions* opt = nullptr);

/// Average of the rising and falling propagation delay of a single FO4
/// inverter at `vdd` — the circuit-level counterpart of
/// device::GateDelayModel::fo4_delay (up to one global load-cap scale).
double fo4_delay_spice(const device::TechNode& tech, double vdd,
                       double load_cap = 4e-15);

/// Oscillation period of an N-stage (odd) ring oscillator at `vdd`.
/// Returns 0 on simulation failure.
double ring_oscillator_period(const device::TechNode& tech, int stages,
                              double vdd, double load_cap = 4e-15);

}  // namespace ntv::circuit
