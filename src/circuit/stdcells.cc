#include "circuit/stdcells.h"

#include <stdexcept>

#include "circuit/simulator.h"

namespace ntv::circuit {

NodeId add_inverter(Netlist& netlist, NodeId vdd, NodeId input,
                    double load_cap, const device::GateVar& nmos_var,
                    const device::GateVar& pmos_var) {
  const NodeId out = netlist.add_node();
  Mosfet n{MosType::kNmos, out, input, kGround, 1.0, nmos_var.dvth,
           1.0 + nmos_var.mult};
  Mosfet p{MosType::kPmos, out, input, vdd, 2.0, pmos_var.dvth,
           1.0 + pmos_var.mult};
  netlist.add_mosfet(n);
  netlist.add_mosfet(p);
  netlist.add_capacitor(out, kGround, load_cap);
  return out;
}

NodeId add_nand2(Netlist& netlist, NodeId vdd, NodeId a, NodeId b,
                 double load_cap, const Cell2Var& var) {
  const NodeId out = netlist.add_node();
  const NodeId mid = netlist.add_node();  // Between the series NMOS pair.

  // Series pulldown (double width balances the stack resistance).
  Mosfet na{MosType::kNmos, out, a, mid, 2.0, var.nmos_a.dvth,
            1.0 + var.nmos_a.mult};
  Mosfet nb{MosType::kNmos, mid, b, kGround, 2.0, var.nmos_b.dvth,
            1.0 + var.nmos_b.mult};
  // Parallel pullup.
  Mosfet pa{MosType::kPmos, out, a, vdd, 2.0, var.pmos_a.dvth,
            1.0 + var.pmos_a.mult};
  Mosfet pb{MosType::kPmos, out, b, vdd, 2.0, var.pmos_b.dvth,
            1.0 + var.pmos_b.mult};
  netlist.add_mosfet(na);
  netlist.add_mosfet(nb);
  netlist.add_mosfet(pa);
  netlist.add_mosfet(pb);
  // Small parasitic on the internal node keeps the transient well-posed.
  netlist.add_capacitor(mid, kGround, load_cap / 20.0);
  netlist.add_capacitor(out, kGround, load_cap);
  return out;
}

NodeId add_nor2(Netlist& netlist, NodeId vdd, NodeId a, NodeId b,
                double load_cap, const Cell2Var& var) {
  const NodeId out = netlist.add_node();
  const NodeId mid = netlist.add_node();  // Between the series PMOS pair.

  // Parallel pulldown.
  Mosfet na{MosType::kNmos, out, a, kGround, 1.0, var.nmos_a.dvth,
            1.0 + var.nmos_a.mult};
  Mosfet nb{MosType::kNmos, out, b, kGround, 1.0, var.nmos_b.dvth,
            1.0 + var.nmos_b.mult};
  // Series pullup (quadruple width balances the weak stacked PMOS).
  Mosfet pa{MosType::kPmos, mid, a, vdd, 4.0, var.pmos_a.dvth,
            1.0 + var.pmos_a.mult};
  Mosfet pb{MosType::kPmos, out, b, mid, 4.0, var.pmos_b.dvth,
            1.0 + var.pmos_b.mult};
  netlist.add_mosfet(na);
  netlist.add_mosfet(nb);
  netlist.add_mosfet(pa);
  netlist.add_mosfet(pb);
  netlist.add_capacitor(mid, kGround, load_cap / 20.0);
  netlist.add_capacitor(out, kGround, load_cap);
  return out;
}

double dc_output(const device::TechNode& tech, double vdd, bool a, bool b,
                 NodeId (*build)(Netlist&, NodeId, NodeId, NodeId)) {
  Netlist netlist(tech);
  const NodeId vdd_node = netlist.add_node("vdd");
  netlist.add_vsource(vdd_node, kGround, vdd);
  const NodeId a_node = netlist.add_node("a");
  const NodeId b_node = netlist.add_node("b");
  netlist.add_vsource(a_node, kGround, a ? vdd : 0.0);
  netlist.add_vsource(b_node, kGround, b ? vdd : 0.0);

  const NodeId out = build(netlist, vdd_node, a_node, b_node);
  const DcResult dc = dc_operating_point(netlist);
  if (!dc.converged)
    throw std::runtime_error("dc_output: operating point did not converge");
  return dc.x[out - 1];
}

}  // namespace ntv::circuit
