#include "circuit/netlist.h"

#include <algorithm>
#include <utility>

namespace ntv::circuit {

double VSource::value(double t) const noexcept {
  if (pwl.empty()) return dc;
  if (t <= pwl.front().first) return pwl.front().second;
  if (t >= pwl.back().first) return pwl.back().second;
  const auto it = std::upper_bound(
      pwl.begin(), pwl.end(), t,
      [](double time, const auto& pt) { return time < pt.first; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double frac = (t - lo.first) / (hi.first - lo.first);
  return lo.second + frac * (hi.second - lo.second);
}

NodeId Netlist::add_node(std::string name) {
  const NodeId id = names_.size();
  if (name.empty()) name = "n" + std::to_string(id);
  names_.push_back(std::move(name));
  return id;
}

void Netlist::add_resistor(NodeId a, NodeId b, double ohms) {
  r_.push_back({a, b, ohms});
}

void Netlist::add_capacitor(NodeId a, NodeId b, double farads,
                            double initial_volts) {
  c_.push_back({a, b, farads, initial_volts});
}

std::size_t Netlist::add_vsource(NodeId pos, NodeId neg, double dc) {
  v_.push_back({pos, neg, dc, {}});
  return v_.size() - 1;
}

std::size_t Netlist::add_vsource_pwl(
    NodeId pos, NodeId neg, std::vector<std::pair<double, double>> pwl) {
  VSource src;
  src.pos = pos;
  src.neg = neg;
  src.pwl = std::move(pwl);
  v_.push_back(std::move(src));
  return v_.size() - 1;
}

void Netlist::add_mosfet(const Mosfet& m) { m_.push_back(m); }

}  // namespace ntv::circuit
