// VCD (Value Change Dump) export of transient waveforms.
//
// Real-valued VCD ($var real ...) viewable in GTKWave and friends, so the
// mini-SPICE runs can be inspected with standard EDA tooling.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.h"
#include "circuit/simulator.h"

namespace ntv::circuit {

/// Options for the dump.
struct VcdOptions {
  std::string timescale = "1ps";  ///< VCD timescale directive.
  double time_unit = 1e-12;       ///< Seconds per VCD time tick.
  /// Minimum voltage change recorded (suppresses numeric chatter).
  double resolution = 1e-6;
};

/// Renders the transient result as VCD text. Node names come from the
/// netlist; every non-ground node becomes a real-valued signal.
std::string to_vcd(const Netlist& netlist, const TransientResult& result,
                   const VcdOptions& options = {});

/// Writes the VCD to a file; throws std::runtime_error on I/O failure.
void write_vcd(const std::string& path, const Netlist& netlist,
               const TransientResult& result,
               const VcdOptions& options = {});

}  // namespace ntv::circuit
