// Shared work-stealing thread-pool executor.
//
// Every experiment in the paper is a Monte Carlo sweep over a node x Vdd
// grid, and every layer above stats now funnels its parallelism through
// this one pool instead of spawning (and joining) fresh std::thread
// vectors per call. Design points:
//
//  * One pool per process (`ThreadPool::global()`), sized once at startup
//    from --threads / $NTV_THREADS / hardware_concurrency. Workers are
//    per-thread deques; an idle worker steals from the front of a busy
//    worker's deque (classic work stealing, surfaced as the "exec.steals"
//    counter).
//  * Seed-stable scheduling: `parallel_for` hands the body its item index
//    and nothing else. Work items own their RNG substream (the MC runner
//    maps block b -> substream(seed, b)), so results are byte-identical
//    for ANY worker count — the determinism contract behind the JSON
//    report gates (docs/PARALLELISM.md).
//  * Fork-join helping: the thread that calls `parallel_for` participates —
//    it executes queued tasks while its loop is outstanding. Nested
//    `parallel_for` (a grid-point task running its own Monte Carlo) is
//    therefore safe and deadlock-free: a waiting thread always drains
//    runnable tasks instead of blocking on an empty queue.
//  * Observability: the pool feeds the obs registry (exec.tasks,
//    exec.steals, exec.loops, exec.workers, exec.queue_peak, exec.busy),
//    which run reports serialize under metrics.
//
// Threads are constructed HERE and nowhere else in src/ (grep-enforceable:
// `std::thread` construction only in thread_pool.cc). Subsystems that
// need a dedicated long-lived thread — the service layer's socket
// accept/connection loops, which block on I/O and therefore must never
// occupy a pool lane — obtain it through exec::spawn_thread() below,
// keeping the contract auditable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ntv::exec {

/// Resolves a requested total thread count (workers + participating
/// caller) the way the runtime does:
///   requested > 0  -> requested (no silent ceiling; the old Monte Carlo
///                     runner clamped to 16);
///   requested == 0 -> $NTV_THREADS when set to a positive integer,
///                     otherwise hardware_concurrency (at least 1).
int resolved_worker_threads(int requested = 0);

/// Fork-join thread pool with per-worker deques and work stealing.
class ThreadPool {
 public:
  /// Scheduling class of an async task. The pool runs two tiers:
  /// interactive tasks live in a dedicated central queue that every
  /// lane checks BEFORE its own deque, so they overtake all queued
  /// batch work (running tasks are never preempted — the tier decides
  /// dispatch order, not execution). parallel_for chunks always run at
  /// batch priority; the interactive tier exists for the service
  /// layer's low-latency analytic requests (docs/SERVICE.md).
  enum class Priority {
    kBatch,        ///< Default: per-worker deques, work stealing.
    kInteractive,  ///< Central priority queue, dispatched first.
  };

  /// A pool with `threads` total parallelism: `threads - 1` worker
  /// threads are spawned; the caller of parallel_for/async supplies the
  /// remaining lane by helping. threads < 1 is clamped to 1 (a pure
  /// inline executor that spawns nothing).
  explicit ThreadPool(int threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total parallelism (worker threads + the participating caller).
  int thread_count() const noexcept {
    return static_cast<int>(workers_.size()) + 1;
  }

  /// Runs body(i) for every i in [begin, end). Items are packed into
  /// chunks of `grain` consecutive indices; chunk count (and therefore
  /// the "exec.tasks" counter) depends only on (end - begin, grain),
  /// never on the worker count. Blocks until every item completed; the
  /// calling thread executes chunks too. The first exception thrown by
  /// the body is rethrown here after the loop drains. Reentrant: the
  /// body may itself call parallel_for on the same pool.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& body,
                    std::size_t grain = 1);

  /// Schedules one task and returns its future. Used for heterogeneous
  /// fan-out (e.g. one future per table cell); prefer parallel_for for
  /// uniform index spaces. `priority` selects the dispatch tier (see
  /// Priority); the "exec.interactive_tasks" counter tracks the
  /// interactive submissions.
  template <typename F>
  auto async(F&& fn, Priority priority = Priority::kBatch)
      -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(
        std::forward<F>(fn));
    std::future<R> future = task->get_future();
    enqueue([task] { (*task)(); }, priority);
    return future;
  }

  /// The process-wide pool, created on first use with
  /// resolved_worker_threads(0). Intentionally leaked so tasks queued
  /// from static destructors cannot outlive it.
  static ThreadPool& global();

  /// Resizes the global pool to `resolved_worker_threads(threads)`
  /// lanes. Joins the old workers first, so call it at startup (the
  /// --threads flag) or between runs — never while tasks are in flight.
  static void set_global_thread_count(int threads);

  /// Thread count the global pool has (or would be created with) — what
  /// run manifests record as the resolved worker count.
  static int global_thread_count();

 private:
  struct LoopState;

  void worker_loop(std::size_t self);
  void enqueue(std::function<void()> fn,
               Priority priority = Priority::kBatch);
  /// Pops a runnable task: the interactive queue first (priority
  /// dispatch), then the back of queue `self` (own work, LIFO), else
  /// the front of another queue (a steal). `self` == queues_.size()
  /// means "external helper thread" (no own queue). Requires mu_ held;
  /// returns an empty function when nothing is runnable.
  std::function<void()> take_locked(std::size_t self);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> interactive_;  ///< Priority tier.
  std::vector<std::deque<std::function<void()>>> queues_;
  std::vector<std::thread> workers_;
  std::size_t next_queue_ = 0;  ///< Round-robin submission cursor.
  std::size_t queued_ = 0;      ///< Tasks currently queued (for depth gauge).
  bool stop_ = false;
};

/// The ONLY sanctioned way for code outside this translation unit to
/// obtain a dedicated OS thread (the repo contract is that std::thread
/// is constructed in thread_pool.cc and nowhere else in src/). Meant for
/// long-lived loops that block on I/O — e.g. the service layer's socket
/// accept and per-connection reader threads — which must never occupy a
/// pool lane. The caller owns the returned thread and must join it.
std::thread spawn_thread(std::function<void()> fn);

}  // namespace ntv::exec
