#include "exec/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>

#include "obs/metrics.h"

namespace ntv::exec {

namespace {

obs::Counter& tasks_metric() {
  static obs::Counter& c = obs::counter("exec.tasks");
  return c;
}
obs::Counter& steals_metric() {
  static obs::Counter& c = obs::counter("exec.steals");
  return c;
}
obs::Counter& loops_metric() {
  static obs::Counter& c = obs::counter("exec.loops");
  return c;
}
obs::Timer& busy_metric() {
  static obs::Timer& t = obs::timer("exec.busy");
  return t;
}
obs::Counter& interactive_metric() {
  static obs::Counter& c = obs::counter("exec.interactive_tasks");
  return c;
}

}  // namespace

int resolved_worker_threads(int requested) {
  if (requested > 0) return requested;
  if (const char* env = std::getenv("NTV_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) return static_cast<int>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(1, static_cast<int>(hw));
}

/// Completion state of one parallel_for call, shared by its chunk tasks.
/// Lifetime: lives on the caller's stack. The last chunk publishes `done`
/// under `mu` and touches nothing of this struct after releasing it; the
/// caller blocks on (mu, cv) until `done` before returning, so the state
/// can never be destroyed under a notifier.
struct ThreadPool::LoopState {
  std::atomic<std::size_t> pending{0};  ///< Chunks not yet finished.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;         ///< pending hit 0 (guarded by mu).
  std::exception_ptr error;  ///< First body exception (guarded by mu).
};

ThreadPool::ThreadPool(int threads) {
  const int lanes = std::max(1, threads);
  queues_.resize(static_cast<std::size_t>(lanes - 1));
  workers_.reserve(queues_.size());
  for (std::size_t w = 0; w < queues_.size(); ++w) {
    workers_.emplace_back([this, w] { worker_loop(w); });
  }
  obs::gauge("exec.workers").set(lanes);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(std::function<void()> fn, Priority priority) {
  if (priority == Priority::kInteractive) interactive_metric().increment();
  if (queues_.empty()) {
    // Single-lane pool: execute synchronously on the caller.
    obs::ScopedTimer busy(busy_metric());
    fn();
    tasks_metric().increment();
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (priority == Priority::kInteractive) {
      // FIFO within the tier: arrival order is the fairness contract
      // for interactive requests (docs/SERVICE.md).
      interactive_.push_back(std::move(fn));
    } else {
      queues_[next_queue_].push_back(std::move(fn));
      next_queue_ = (next_queue_ + 1) % queues_.size();
    }
    ++queued_;
    static obs::Gauge& peak = obs::gauge("exec.queue_peak");
    if (static_cast<double>(queued_) > peak.value()) {
      peak.set(static_cast<double>(queued_));
    }
  }
  cv_.notify_one();
}

std::function<void()> ThreadPool::take_locked(std::size_t self) {
  // Interactive tier first: any lane that comes looking for work serves
  // the central priority queue before its own batch deque.
  if (!interactive_.empty()) {
    std::function<void()> fn = std::move(interactive_.front());
    interactive_.pop_front();
    --queued_;
    return fn;
  }
  // Own deque first, newest task (LIFO keeps nested loops cache-warm and
  // lets a forking task drain its own children before stealing).
  if (self < queues_.size() && !queues_[self].empty()) {
    std::function<void()> fn = std::move(queues_[self].back());
    queues_[self].pop_back();
    --queued_;
    return fn;
  }
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    if (i == self || queues_[i].empty()) continue;
    std::function<void()> fn = std::move(queues_[i].front());
    queues_[i].pop_front();
    --queued_;
    if (self < queues_.size()) steals_metric().increment();
    return fn;
  }
  return {};
}

void ThreadPool::worker_loop(std::size_t self) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    if (std::function<void()> fn = take_locked(self)) {
      lk.unlock();
      {
        obs::ScopedTimer busy(busy_metric());
        fn();
      }
      tasks_metric().increment();
      lk.lock();
      continue;
    }
    if (stop_) return;
    cv_.wait(lk);
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& body,
                              std::size_t grain) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  if (grain == 0) grain = 1;
  const std::size_t chunks = (n + grain - 1) / grain;
  loops_metric().increment();

  // Serial fast path: no workers to share with, or a single chunk.
  if (workers_.empty() || chunks == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }

  LoopState loop;
  loop.pending.store(chunks, std::memory_order_relaxed);

  {
    std::lock_guard<std::mutex> lk(mu_);
    for (std::size_t c = 0; c < chunks; ++c) {
      const std::size_t lo = begin + c * grain;
      const std::size_t hi = std::min(end, lo + grain);
      queues_[next_queue_].push_back([&loop, &body, lo, hi] {
        try {
          for (std::size_t i = lo; i < hi; ++i) body(i);
        } catch (...) {
          std::lock_guard<std::mutex> elk(loop.mu);
          if (!loop.error) loop.error = std::current_exception();
        }
        if (loop.pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
          // Completion edge: publish under the loop mutex. This is the
          // last access to `loop` this task makes (see LoopState).
          std::lock_guard<std::mutex> dlk(loop.mu);
          loop.done = true;
          loop.cv.notify_all();
        }
      });
      next_queue_ = (next_queue_ + 1) % queues_.size();
      ++queued_;
    }
    static obs::Gauge& peak = obs::gauge("exec.queue_peak");
    if (static_cast<double>(queued_) > peak.value()) {
      peak.set(static_cast<double>(queued_));
    }
  }
  cv_.notify_all();

  // Help: run queued tasks (this loop's chunks or anyone else's) until
  // this loop completes. Executing foreign tasks while waiting is what
  // makes nested parallel_for deadlock-free.
  while (loop.pending.load(std::memory_order_acquire) != 0) {
    std::function<void()> fn;
    {
      std::lock_guard<std::mutex> lk(mu_);
      fn = take_locked(queues_.size());
    }
    if (fn) {
      {
        obs::ScopedTimer busy(busy_metric());
        fn();
      }
      tasks_metric().increment();
      continue;
    }
    std::unique_lock<std::mutex> lk(loop.mu);
    loop.cv.wait(lk, [&loop] { return loop.done; });
  }
  // Completion fence: even when the pending == 0 exit was taken off the
  // atomic alone, wait for `done` so the last chunk has released loop.mu
  // before LoopState leaves scope.
  {
    std::unique_lock<std::mutex> lk(loop.mu);
    loop.cv.wait(lk, [&loop] { return loop.done; });
  }
  if (loop.error) std::rethrow_exception(loop.error);
}

namespace {
std::mutex g_pool_mu;
ThreadPool* g_pool = nullptr;  // Leaked: see ThreadPool::global().
}  // namespace

ThreadPool& ThreadPool::global() {
  std::lock_guard<std::mutex> lk(g_pool_mu);
  if (!g_pool) g_pool = new ThreadPool(resolved_worker_threads(0));
  return *g_pool;
}

void ThreadPool::set_global_thread_count(int threads) {
  const int resolved = resolved_worker_threads(threads);
  std::unique_lock<std::mutex> lk(g_pool_mu);
  if (g_pool && g_pool->thread_count() == resolved) return;
  ThreadPool* old = g_pool;
  g_pool = new ThreadPool(resolved);
  lk.unlock();
  delete old;  // Joins the old workers (their queues must be drained).
}

int ThreadPool::global_thread_count() {
  {
    std::lock_guard<std::mutex> lk(g_pool_mu);
    if (g_pool) return g_pool->thread_count();
  }
  return global().thread_count();
}

std::thread spawn_thread(std::function<void()> fn) {
  return std::thread(std::move(fn));
}

}  // namespace ntv::exec
