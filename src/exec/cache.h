// Keyed memoization caches for the parallel sweep engine.
//
// Grid sweeps hit the same expensive intermediates from many pool tasks
// at once (a calibrated per-(node, Vdd) delay distribution, a per-voltage
// chip sampler, a sign-off percentile). Two concurrency disciplines are
// provided, and choosing between them is a correctness decision, not a
// performance one:
//
//  * KeyedOnceCache — each key's value is built exactly once (a
//    per-slot build-once latch); other threads block until it is ready.
//    Use ONLY
//    when the factory never executes pool tasks: a thread that helps the
//    pool while inside call_once could steal a task that re-enters the
//    same once_flag and self-deadlock. Right for the quadrature+FFT
//    distribution builders and sampler construction, which are serial.
//
//  * KeyedRaceCache — concurrent misses on the same key may each run the
//    factory; the first finished insert wins and later duplicates are
//    discarded. Deadlock-free under fork-join helping, so this is the
//    one to use when the factory runs Monte Carlo on the shared pool.
//    Safe for determinism because every factory in this repo is a pure
//    function of (key, seed): duplicates compute bit-identical values.
//
// Both return references that stay valid for the cache's lifetime
// (node-based std::map; clear() is test-only and invalidates them).
#pragma once

#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

namespace ntv::exec {

/// Build-once keyed cache. Factory must not execute pool tasks (see the
/// file comment for the deadlock rationale).
template <typename Key, typename Value, typename Compare = std::less<Key>>
class KeyedOnceCache {
 public:
  KeyedOnceCache() = default;

  /// Moves transfer the cached entries but, like any mutex-protected
  /// container, are only safe while no other thread touches either side
  /// (setup-time moves, e.g. vector growth of cache owners).
  KeyedOnceCache(KeyedOnceCache&& other) noexcept {
    std::lock_guard<std::mutex> lk(other.mu_);
    map_ = std::move(other.map_);
  }
  KeyedOnceCache& operator=(KeyedOnceCache&& other) noexcept {
    if (this != &other) {
      std::scoped_lock lk(mu_, other.mu_);
      map_ = std::move(other.map_);
    }
    return *this;
  }

  /// Returns the value for `key`, invoking `factory` at most once per key
  /// process-wide. A throwing factory leaves the key unbuilt (the next
  /// caller retries). Implemented as an explicit idle/building/ready
  /// state machine rather than std::call_once: the exceptional-retry
  /// path of call_once is unreliable under ThreadSanitizer.
  template <typename Factory>
  const Value& get_or_build(const Key& key, Factory&& factory) {
    Slot* slot = nullptr;
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto [it, inserted] = map_.try_emplace(key);
      if (inserted) it->second = std::make_unique<Slot>();
      slot = it->second.get();
    }
    std::unique_lock<std::mutex> lk(slot->m);
    while (true) {
      if (slot->state == Slot::kReady) return *slot->value;
      if (slot->state == Slot::kIdle) break;
      slot->cv.wait(lk);  // Another thread is building; block until done.
    }
    slot->state = Slot::kBuilding;
    lk.unlock();
    try {
      Value built = factory();
      lk.lock();
      slot->value.emplace(std::move(built));
      slot->state = Slot::kReady;
      slot->cv.notify_all();
      return *slot->value;
    } catch (...) {
      lk.lock();
      slot->state = Slot::kIdle;  // Unbuilt again: the next caller retries.
      slot->cv.notify_all();
      throw;
    }
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.size();
  }

  /// Drops every entry. Invalidates all previously returned references —
  /// for tests and explicit lifecycle points only, never mid-sweep.
  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    map_.clear();
  }

 private:
  struct Slot {
    enum State { kIdle, kBuilding, kReady };
    std::mutex m;
    std::condition_variable cv;
    State state = kIdle;
    std::optional<Value> value;
  };
  mutable std::mutex mu_;
  std::map<Key, std::unique_ptr<Slot>, Compare> map_;
};

/// First-insert-wins keyed cache; concurrent misses may duplicate the
/// factory call. Use when the factory itself runs on the thread pool.
template <typename Key, typename Value, typename Compare = std::less<Key>>
class KeyedRaceCache {
 public:
  KeyedRaceCache() = default;

  /// See KeyedOnceCache: moves are setup-time only, never concurrent.
  KeyedRaceCache(KeyedRaceCache&& other) noexcept {
    std::lock_guard<std::mutex> lk(other.mu_);
    map_ = std::move(other.map_);
  }
  KeyedRaceCache& operator=(KeyedRaceCache&& other) noexcept {
    if (this != &other) {
      std::scoped_lock lk(mu_, other.mu_);
      map_ = std::move(other.map_);
    }
    return *this;
  }

  template <typename Factory>
  const Value& get_or_build(const Key& key, Factory&& factory) {
    {
      std::lock_guard<std::mutex> lk(mu_);
      auto it = map_.find(key);
      if (it != map_.end()) return it->second;
    }
    Value built = factory();  // Outside the lock: may run pool tasks.
    std::lock_guard<std::mutex> lk(mu_);
    auto [it, inserted] = map_.try_emplace(key, std::move(built));
    return it->second;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mu_);
    return map_.size();
  }

  /// Test-only: invalidates all previously returned references.
  void clear() {
    std::lock_guard<std::mutex> lk(mu_);
    map_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<Key, Value, Compare> map_;
};

}  // namespace ntv::exec
