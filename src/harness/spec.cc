#include "harness/spec.h"

#include <algorithm>

namespace ntv::harness {

std::string_view verdict_glyph(Verdict v) noexcept {
  switch (v) {
    case Verdict::kPass:
      return "✔";  // ✔
    case Verdict::kApprox:
      return "≈";  // ≈
    case Verdict::kFail:
      break;
  }
  return "✘";  // ✘
}

std::string_view verdict_name(Verdict v) noexcept {
  switch (v) {
    case Verdict::kPass:
      return "pass";
    case Verdict::kApprox:
      return "approx";
    case Verdict::kFail:
      break;
  }
  return "fail";
}

Checkpoint checkpoint(std::string key, std::string label, std::string paper,
                      double lo, double hi, std::string unit, int precision,
                      bool smoke) {
  Checkpoint cp;
  cp.key = std::move(key);
  cp.label = std::move(label);
  cp.paper = std::move(paper);
  cp.lo = lo;
  cp.hi = hi;
  // Default ≈ band: half a span beyond the ✔ band on each side. Specs
  // with a deliberate "right shape, magnitude off" classification widen
  // it explicitly instead.
  const double slack = 0.5 * (hi - lo);
  cp.approx_lo = lo - slack;
  cp.approx_hi = hi + slack;
  cp.unit = std::move(unit);
  cp.precision = precision;
  cp.smoke = smoke;
  return cp;
}

const ExperimentSpec* find_spec(std::string_view id) {
  const auto& specs = registry();
  const auto it = std::find_if(
      specs.begin(), specs.end(),
      [&](const ExperimentSpec& s) { return s.id == id; });
  return it == specs.end() ? nullptr : &*it;
}

}  // namespace ntv::harness
