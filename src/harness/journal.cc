#include "harness/journal.h"

#include <cstdio>

#include "harness/json.h"
#include "obs/json_writer.h"

namespace ntv::harness {

std::string_view run_status_name(RunStatus s) noexcept {
  switch (s) {
    case RunStatus::kOk:
      return "ok";
    case RunStatus::kTimeout:
      return "timeout";
    case RunStatus::kFailed:
      break;
  }
  return "failed";
}

std::optional<RunStatus> parse_run_status(std::string_view name) noexcept {
  if (name == "ok") return RunStatus::kOk;
  if (name == "failed") return RunStatus::kFailed;
  if (name == "timeout") return RunStatus::kTimeout;
  return std::nullopt;
}

std::string JournalEntry::to_json_line() const {
  obs::JsonWriter w;
  w.begin_object();
  w.key("experiment").value(id);
  w.key("status").value(run_status_name(status));
  w.key("attempts").value(attempts);
  w.key("exit_code").value(exit_code);
  w.key("elapsed_ms").value(static_cast<std::int64_t>(elapsed_ms));
  w.key("report").value(report);
  w.key("smoke").value(smoke);
  w.end_object();
  return w.str();
}

std::optional<JournalEntry> JournalEntry::from_json_line(
    std::string_view line) {
  const auto doc = JsonValue::parse(line);
  if (!doc || !doc->is_object()) return std::nullopt;
  const JsonValue* id = doc->find("experiment");
  const JsonValue* status = doc->find("status");
  if (!id || !id->is_string() || !status || !status->is_string()) {
    return std::nullopt;
  }
  const auto parsed = parse_run_status(status->as_string());
  if (!parsed) return std::nullopt;
  JournalEntry entry;
  entry.id = id->as_string();
  entry.status = *parsed;
  if (const JsonValue* v = doc->find("attempts")) {
    entry.attempts = static_cast<int>(v->as_number());
  }
  if (const JsonValue* v = doc->find("exit_code")) {
    entry.exit_code = static_cast<int>(v->as_number());
  }
  if (const JsonValue* v = doc->find("elapsed_ms")) {
    entry.elapsed_ms = static_cast<std::int64_t>(v->as_number());
  }
  if (const JsonValue* v = doc->find("report")) {
    entry.report = v->as_string();
  }
  if (const JsonValue* v = doc->find("smoke")) {
    entry.smoke = v->as_bool();
  }
  return entry;
}

bool Journal::append(const JournalEntry& entry) const {
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  if (!f) return false;
  // Crash recovery: a run killed mid-append leaves a torn final line with
  // no trailing newline. Appending straight after it would concatenate
  // this record onto the torn one — losing BOTH (the combined line parses
  // as neither). Seal the torn line with a newline first; load() then
  // skips it as malformed while this record survives intact.
  bool ok = true;
  if (std::fseek(f, 0, SEEK_END) == 0 && std::ftell(f) > 0) {
    std::FILE* r = std::fopen(path_.c_str(), "rb");
    if (r) {
      char last = '\n';
      if (std::fseek(r, -1, SEEK_END) == 0) {
        last = static_cast<char>(std::fgetc(r));
      }
      std::fclose(r);
      if (last != '\n') ok = std::fputc('\n', f) != EOF;
    }
  }
  const std::string line = entry.to_json_line();
  ok = ok && std::fwrite(line.data(), 1, line.size(), f) == line.size() &&
       std::fputc('\n', f) != EOF && std::fflush(f) == 0;
  std::fclose(f);
  return ok;
}

std::map<std::string, JournalEntry> Journal::load() const {
  std::map<std::string, JournalEntry> latest;
  const auto text = read_text_file(path_);
  if (!text) return latest;
  std::size_t start = 0;
  while (start < text->size()) {
    std::size_t end = text->find('\n', start);
    if (end == std::string::npos) end = text->size();
    const std::string_view line(text->data() + start, end - start);
    if (!line.empty()) {
      if (auto entry = JournalEntry::from_json_line(line)) {
        latest[entry->id] = std::move(*entry);
      }
    }
    start = end + 1;
  }
  return latest;
}

}  // namespace ntv::harness
