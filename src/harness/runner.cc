#include "harness/runner.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <ctime>

#include "harness/json.h"
#include "stats/shard.h"

namespace ntv::harness {
namespace {

using Clock = std::chrono::steady_clock;

/// waitpid with a deadline: polls the child every 50 ms, SIGKILLs it (and
/// reaps the zombie) once the deadline passes. Returns true when the
/// child exited by itself, false on timeout. A plain blocking waitpid
/// with SIGALRM would race with retries; the poll loop is simple and the
/// 50 ms granularity is irrelevant next to multi-second experiments.
bool wait_with_deadline(pid_t pid, Clock::time_point deadline,
                        int* wait_status) {
  while (true) {
    const pid_t done = waitpid(pid, wait_status, WNOHANG);
    if (done == pid) return true;
    if (done < 0 && errno != EINTR) {
      *wait_status = 0;
      return true;  // Child vanished; treat as exited.
    }
    if (Clock::now() >= deadline) {
      kill(pid, SIGKILL);
      waitpid(pid, wait_status, 0);
      return false;
    }
    struct timespec nap = {0, 50 * 1000 * 1000};
    nanosleep(&nap, nullptr);
  }
}

/// Spawns `argv` with stdout+stderr redirected to `log_file`. Returns the
/// child pid, or -1 on fork/exec failure.
pid_t spawn(const std::vector<std::string>& argv,
            const std::string& log_file) {
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) {
    cargv.push_back(const_cast<char*>(a.c_str()));
  }
  cargv.push_back(nullptr);

  const pid_t pid = fork();
  if (pid != 0) return pid;

  // Child: redirect output, detach from the parent's stdin, exec.
  const int fd = open(log_file.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    dup2(fd, STDOUT_FILENO);
    dup2(fd, STDERR_FILENO);
    close(fd);
  }
  execv(cargv[0], cargv.data());
  // exec failed: exit with the conventional 127 so the parent sees it.
  _exit(127);
}

void progress(std::FILE* log, const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  std::vfprintf(log ? log : stdout, fmt, args);
  va_end(args);
  std::fflush(log ? log : stdout);
}

bool file_exists(const std::string& path) {
  struct stat st;
  return stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace

bool ensure_directory(const std::string& path) {
  if (path.empty()) return false;
  // Create each prefix in turn (mkdir -p).
  for (std::size_t i = 1; i <= path.size(); ++i) {
    if (i != path.size() && path[i] != '/') continue;
    const std::string prefix = path.substr(0, i);
    if (mkdir(prefix.c_str(), 0755) != 0 && errno != EEXIST) return false;
  }
  struct stat st;
  return stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::string journal_path(const std::string& out_dir) {
  return out_dir + "/journal.jsonl";
}

std::string report_path(const std::string& out_dir, const std::string& id) {
  return out_dir + "/reports/" + id + ".json";
}

std::string log_path(const std::string& out_dir, const std::string& id) {
  return out_dir + "/logs/" + id + ".log";
}

std::string manifest_path(const std::string& out_dir) {
  return out_dir + "/EXPERIMENTS.json";
}

std::string shard_dir_path(const std::string& out_dir, const std::string& id) {
  return out_dir + "/shards/" + id;
}

std::string shard_entry_id(const std::string& id, int index, int count) {
  return id + ".shard" + std::to_string(index) + "of" + std::to_string(count);
}

JournalEntry run_experiment(const ExperimentSpec& spec,
                            const RunOptions& opt) {
  JournalEntry entry;
  entry.id = spec.id;
  entry.smoke = opt.smoke;
  entry.report = report_path(opt.out_dir, spec.id);

  const int timeout_sec = opt.timeout_sec_override > 0
                              ? opt.timeout_sec_override
                              : spec.timeout_sec;
  const int max_attempts = std::max(
      1, opt.max_attempts_override > 0 ? opt.max_attempts_override
                                       : spec.max_attempts);

  std::vector<std::string> argv;
  argv.push_back(opt.bin_dir + "/" + spec.binary);
  argv.push_back("--artifact_only");
  argv.push_back("--report");
  argv.push_back(entry.report);
  argv.insert(argv.end(), spec.args.begin(), spec.args.end());
  if (opt.smoke) {
    argv.insert(argv.end(), spec.smoke_args.begin(), spec.smoke_args.end());
  }

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    entry.attempts = attempt;
    // A stale report from a previous (crashed) attempt must not be
    // mistaken for this attempt's output.
    std::remove(entry.report.c_str());

    const auto start = Clock::now();
    const pid_t pid = spawn(argv, log_path(opt.out_dir, spec.id));
    if (pid < 0) {
      entry.status = RunStatus::kFailed;
      entry.exit_code = -1;
      continue;
    }
    int wait_status = 0;
    const bool exited = wait_with_deadline(
        pid, start + std::chrono::seconds(timeout_sec), &wait_status);
    entry.elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                           Clock::now() - start)
                           .count();
    if (!exited) {
      entry.status = RunStatus::kTimeout;
      entry.exit_code = -SIGKILL;
      continue;
    }
    entry.exit_code = WIFEXITED(wait_status) ? WEXITSTATUS(wait_status)
                      : WIFSIGNALED(wait_status)
                          ? -WTERMSIG(wait_status)
                          : -1;
    if (entry.exit_code != 0) {
      entry.status = RunStatus::kFailed;
      continue;
    }
    // Exit 0 without a parseable report is still a failure: the report
    // IS the experiment's output.
    const auto text = read_text_file(entry.report);
    if (!text || !JsonValue::parse(*text)) {
      entry.status = RunStatus::kFailed;
      continue;
    }
    entry.status = RunStatus::kOk;
    return entry;
  }
  return entry;
}

JournalEntry run_experiment_sharded(
    const ExperimentSpec& spec, const RunOptions& opt, const Journal& journal,
    const std::map<std::string, JournalEntry>& completed) {
  const int count = opt.shards;
  const std::string dir = shard_dir_path(opt.out_dir, spec.id);

  JournalEntry entry;
  entry.id = spec.id;
  entry.smoke = opt.smoke;
  entry.report = report_path(opt.out_dir, spec.id);

  if (!ensure_directory(dir)) {
    entry.status = RunStatus::kFailed;
    entry.exit_code = -1;
    entry.attempts = 1;
    return entry;
  }

  const int timeout_sec = opt.timeout_sec_override > 0
                              ? opt.timeout_sec_override
                              : spec.timeout_sec;
  const int max_attempts = std::max(
      1, opt.max_attempts_override > 0 ? opt.max_attempts_override
                                       : spec.max_attempts);

  // argv tail shared by workers and merger: the spec's own arguments
  // (plus smoke reduction). Workers and merger MUST see identical
  // experiment parameters or the tape keys will not match.
  std::vector<std::string> tail;
  tail.insert(tail.end(), spec.args.begin(), spec.args.end());
  if (opt.smoke) {
    tail.insert(tail.end(), spec.smoke_args.begin(), spec.smoke_args.end());
  }
  const std::string bin = opt.bin_dir + "/" + spec.binary;

  // --- Worker wave: all pending shards spawned concurrently per attempt
  // round, each waited against its own deadline. A worker is complete
  // when it exits 0 AND its tape file exists (the tape is written via
  // atomic rename, so existence implies completeness).
  struct Worker {
    JournalEntry entry;
    std::string tape;
    bool done = false;
    pid_t pid = -1;
    Clock::time_point start;
  };
  std::vector<Worker> workers(static_cast<std::size_t>(count));
  for (int k = 0; k < count; ++k) {
    Worker& w = workers[static_cast<std::size_t>(k)];
    w.entry.id = shard_entry_id(spec.id, k, count);
    w.entry.smoke = opt.smoke;
    w.tape = stats::shard_tape_path(dir, k, count);
    w.entry.report = w.tape;
    const auto prior = completed.find(w.entry.id);
    if (opt.resume && prior != completed.end() &&
        prior->second.status == RunStatus::kOk &&
        prior->second.smoke == opt.smoke && file_exists(w.tape)) {
      w.entry = prior->second;
      w.done = true;
    }
  }

  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    bool any_pending = false;
    for (int k = 0; k < count; ++k) {
      Worker& w = workers[static_cast<std::size_t>(k)];
      if (w.done) continue;
      any_pending = true;
      w.entry.attempts = attempt;
      std::remove(w.tape.c_str());
      std::vector<std::string> argv;
      argv.push_back(bin);
      argv.push_back("--artifact_only");
      argv.push_back("--shard");
      argv.push_back(std::to_string(k) + "/" + std::to_string(count));
      argv.push_back("--shard-dir");
      argv.push_back(dir);
      argv.insert(argv.end(), tail.begin(), tail.end());
      w.start = Clock::now();
      w.pid = spawn(argv, log_path(opt.out_dir, w.entry.id));
      if (w.pid < 0) {
        w.entry.status = RunStatus::kFailed;
        w.entry.exit_code = -1;
      }
    }
    if (!any_pending) break;
    for (Worker& w : workers) {
      if (w.done || w.pid < 0) continue;
      int wait_status = 0;
      const bool exited = wait_with_deadline(
          w.pid, w.start + std::chrono::seconds(timeout_sec), &wait_status);
      w.pid = -1;
      w.entry.elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                                w.start)
              .count();
      if (!exited) {
        w.entry.status = RunStatus::kTimeout;
        w.entry.exit_code = -SIGKILL;
        continue;
      }
      w.entry.exit_code = WIFEXITED(wait_status) ? WEXITSTATUS(wait_status)
                          : WIFSIGNALED(wait_status)
                              ? -WTERMSIG(wait_status)
                              : -1;
      if (w.entry.exit_code != 0 || !file_exists(w.tape)) {
        w.entry.status = RunStatus::kFailed;
        continue;
      }
      w.entry.status = RunStatus::kOk;
      w.done = true;
      journal.append(w.entry);
    }
  }

  int attempts_used = 1;
  for (const Worker& w : workers) {
    attempts_used = std::max(attempts_used, w.entry.attempts);
    if (w.done) continue;
    // A worker is still failed after all retries: record it and fail the
    // whole experiment (the merger would refuse a partial tape set for
    // shard-filled cells anyway; failing fast here is clearer).
    journal.append(w.entry);
    entry.status = w.entry.status;
    entry.exit_code = w.entry.exit_code;
    entry.attempts = attempts_used;
    return entry;
  }

  // --- Merge child: the standard attempt loop, but pointed at the tapes.
  ExperimentSpec merge_spec = spec;
  merge_spec.args = tail;
  merge_spec.smoke_args.clear();  // Already folded into tail.
  merge_spec.args.push_back("--shard");
  merge_spec.args.push_back("merge/" + std::to_string(count));
  merge_spec.args.push_back("--shard-dir");
  merge_spec.args.push_back(dir);
  RunOptions merge_opt = opt;
  merge_opt.smoke = false;  // Prevent double-appending smoke_args.
  JournalEntry merged = run_experiment(merge_spec, merge_opt);
  merged.smoke = opt.smoke;
  merged.attempts = std::max(merged.attempts, attempts_used);
  return merged;
}

SuiteRun run_suite(const std::vector<ExperimentSpec>& specs,
                   const RunOptions& opt) {
  SuiteRun suite;
  ensure_directory(opt.out_dir + "/reports");
  ensure_directory(opt.out_dir + "/logs");
  const Journal journal(journal_path(opt.out_dir));
  const auto completed = opt.resume
                             ? journal.load()
                             : std::map<std::string, JournalEntry>();

  for (const ExperimentSpec& spec : specs) {
    if (!opt.only.empty() &&
        std::find(opt.only.begin(), opt.only.end(), spec.id) ==
            opt.only.end()) {
      continue;
    }
    if (opt.smoke && !spec.in_smoke_set) continue;

    ExperimentRun run;
    run.spec = &spec;

    const auto prior = completed.find(spec.id);
    if (prior != completed.end() && prior->second.status == RunStatus::kOk &&
        prior->second.smoke == opt.smoke &&
        read_text_file(prior->second.report)) {
      run.entry = prior->second;
      run.resumed = true;
      ++suite.resumed;
      progress(opt.log, "[repro]   skip %-10s (journal: ok, %lld ms)\n",
               spec.id.c_str(),
               static_cast<long long>(run.entry.elapsed_ms));
      suite.experiments.push_back(std::move(run));
      continue;
    }

    const bool sharded = opt.shards > 1 && spec.shardable;
    progress(opt.log, "[repro]   run  %-10s %s%s ...\n", spec.id.c_str(),
             spec.binary.c_str(),
             sharded ? (" (" + std::to_string(opt.shards) + " shards)").c_str()
                     : "");
    run.entry = sharded
                    ? run_experiment_sharded(spec, opt, journal, completed)
                    : run_experiment(spec, opt);
    if (run.entry.status != RunStatus::kOk) ++suite.failed;
    ++suite.ran;
    journal.append(run.entry);
    progress(opt.log, "[repro]   %-4s %-10s attempts=%d %lld ms\n",
             std::string(run_status_name(run.entry.status)).c_str(),
             spec.id.c_str(), run.entry.attempts,
             static_cast<long long>(run.entry.elapsed_ms));
    suite.experiments.push_back(std::move(run));
  }
  return suite;
}

}  // namespace ntv::harness
