// The declarative experiment registry: one ExperimentSpec per paper
// figure/table plus the extensions and ablations. Paper values, band
// choices and the prose notes are transcribed from the reproduction
// analysis that previously lived hand-maintained in EXPERIMENTS.md; the
// committed doc is now rendered from these specs plus run reports
// (docs/REPRODUCTION.md). Band rationale in one line: the ✔ band covers
// the paper's claim plus Monte Carlo noise at the default budget; where
// the reproduction's documented verdict is ≈ ("right shape, magnitude
// off"), the ✔ band hugs the paper and the ≈ band is widened to admit
// the measured value.
#include "harness/spec.h"

namespace ntv::harness {

namespace {

/// checkpoint() with an explicit ≈ band (for deliberate ≈ verdicts the
/// default half-span widening cannot express).
Checkpoint approx_band(Checkpoint cp, double approx_lo, double approx_hi) {
  cp.approx_lo = approx_lo;
  cp.approx_hi = approx_hi;
  return cp;
}

std::vector<ExperimentSpec> build_registry() {
  std::vector<ExperimentSpec> specs;

  {
    ExperimentSpec s;
    s.id = "fig1";
    s.title = "Fig. 1 — gate & chain delay distributions (90 nm)";
    s.binary = "bench_fig1_gate_chain_distributions";
    s.in_smoke_set = true;
    s.checkpoints = {
        checkpoint("single_pct_90nm_0.50V", "single 3σ/μ @0.5 V", "35.49 %",
                   33.0, 37.0, "%", 2, true),
        checkpoint("single_pct_90nm_1.00V", "single 3σ/μ @1.0 V", "15.58 %",
                   14.5, 16.5, "%", 2, true),
        checkpoint("chain_pct_90nm_0.50V", "chain 3σ/μ @0.5 V", "9.43 %",
                   8.8, 10.0, "%", 2, true),
        checkpoint("chain_pct_90nm_1.00V", "chain 3σ/μ @1.0 V", "5.76 %",
                   5.4, 6.1, "%", 2, true),
    };
    s.notes =
        "All twelve tabulated values sit within 7 % relative of the paper "
        "(the 4-parameter variation model is least-squares fitted to this "
        "series; it cannot be exact everywhere). Distribution shapes "
        "reproduce the right-shift and widening at NTV and the right-skew "
        "of the near-threshold histograms.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "fig2";
    s.title = "Fig. 2 — chain 3σ/μ vs Vdd, four nodes";
    s.binary = "bench_fig2_chain_variation_vs_vdd";
    s.in_smoke_set = true;
    s.checkpoints = {
        checkpoint("chain_pct_90nm_0.50V", "90 nm @0.5 V", "9.43 %", 8.7,
                   10.0, "%", 2, true),
        checkpoint("chain_pct_22nm_0.80V", "22 nm @0.8 V", "~11 %", 10.0,
                   12.0, "%", 2, true),
        checkpoint("chain_pct_22nm_0.50V", "22 nm @0.5 V", "~25 %", 23.0,
                   27.0, "%", 2, true),
        checkpoint("ratio_22nm_over_90nm_0.55V", "22 nm / 90 nm @0.55 V",
                   "~2.5×", 2.2, 3.0, "×", 2, true),
    };
    s.notes =
        "Monotone growth toward low voltage for every node; scaling "
        "(90→45→32→22) strictly increases variation. 45/32 nm anchors are "
        "interpolations (the paper publishes no numbers for them); we "
        "impose the monotone ordering. Note the paper's own Table 2 hints "
        "45 nm GP may sit *above* 32 nm PTM HP — see the Table 2 notes.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "fig3";
    s.title = "Fig. 3 — chip-level delay distributions (90 nm, FO4 units)";
    s.binary = "bench_fig3_chip_delay_distributions";
    s.in_smoke_set = true;
    s.checkpoints = {
        checkpoint("path_p50_fo4_1.00V", "critical path median @1 V",
                   "50 FO4", 49.5, 50.5, "FO4", 2, true),
        checkpoint("w128_p50_fo4_1.00V", "128-wide median @1 V",
                   "~54 FO4 (nominal + 4)", 53.0, 55.0, "FO4", 2, true),
        checkpoint("w128_p99_fo4_1.00V", "128-wide p99 @1 V", "~55 FO4",
                   54.0, 55.5, "FO4", 2, true),
        checkpoint("w128_p50_fo4_0.50V", "128-wide median @0.5 V",
                   "drifts right of the 1 V curve", 55.5, 57.5, "FO4", 2,
                   true),
    };
    s.notes =
        "Ordering path < 1-wide < 128-wide at 1 V (the max-of-100 and "
        "max-of-128 shifts) and the rightward drift + widening at NTV both "
        "reproduce; the 128-wide @1 V curve sits ~4 FO4 above the nominal "
        "50, as in the paper.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "fig4";
    s.title = "Fig. 4 — performance drop vs Vdd (99 % sign-off)";
    s.binary = "bench_fig4_performance_drop";
    s.shardable = true;  // Fixed-grid MC sweep (docs/SHARDING.md).
    s.checkpoints = {
        approx_band(checkpoint("drop_pct_90nm_0.50V", "90 nm @0.5 V", "5 %",
                               4.0, 5.5, "%"),
                    3.0, 7.5),
        approx_band(checkpoint("drop_pct_90nm_0.55V", "90 nm @0.55 V",
                               "2.5 %", 2.0, 3.0, "%"),
                    1.5, 4.5),
        approx_band(checkpoint("drop_pct_22nm_0.50V", "22 nm @0.5 V",
                               "~18 %", 15.0, 19.0, "%"),
                    12.0, 24.0),
    };
    s.notes =
        "Shape exact (monotone in voltage, strongly worsening with "
        "scaling, 90 nm \"small\", 22 nm ~4× 90 nm); magnitudes run "
        "1.2–1.5× the paper's. The drop probes the extreme tail (max of "
        "12,800 paths at p99 ≈ the 0.99994 path quantile), where our "
        "exactly-convolved right-skewed tail is heavier than whatever "
        "HSPICE's 10 k empirical samples resolved.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "fig5";
    s.title = "Fig. 5 — duplication delay distributions (90 nm, 0.55 V)";
    s.binary = "bench_fig5_duplication_distributions";
    s.in_smoke_set = true;
    s.checkpoints = {
        checkpoint("baseline_p99_fo4_1.00V", "128-wide p99 @1 V baseline",
                   "~55 FO4", 54.2, 55.0, "FO4", 2, true),
        checkpoint("spread_fo4_alpha0", "p99 − median, α = 0",
                   "widest curve", 0.9, 1.5, "FO4", 2, true),
        checkpoint("spread_fo4_alpha28", "p99 − median, α = 28",
                   "visibly tightened", 0.05, 0.45, "FO4", 2, true),
    };
    s.notes =
        "Spares shift the 0.55 V distribution left *and* tighten it "
        "(p99 − median shrinks ~6× from α = 0 to α = 28), exactly the "
        "paper's visual; ~28 spares match the 1 V baseline at 0.5 V, "
        "fewer at 0.55 V.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "table1";
    s.title = "Table 1 — required spares (structural duplication)";
    s.binary = "bench_table1_spares";
    s.in_smoke_set = true;
    s.shardable = true;  // Fixed-grid MC sweep (docs/SHARDING.md).
    s.smoke_args = {"--samples", "2000"};
    s.checkpoints = {
        approx_band(checkpoint("spares_90nm_0.50V", "90 nm @0.5 V",
                               "28 spares", 22.0, 34.0, "", 0),
                    10.0, 120.0),
        approx_band(checkpoint("spares_90nm_0.55V", "90 nm @0.55 V",
                               "6 spares", 4.0, 8.0, "", 0),
                    2.0, 25.0),
        approx_band(checkpoint("spares_90nm_0.60V", "90 nm @0.6 V",
                               "2 spares", 1.0, 3.0, "", 0),
                    1.0, 8.0),
        checkpoint("spares_90nm_0.70V", "90 nm @0.7 V", "1 spare", 0.5, 1.5,
                   "", 0, true),
        approx_band(checkpoint("spares_22nm_0.70V", "22 nm @0.7 V",
                               "3 spares", 2.0, 4.0, "", 0),
                    2.0, 8.0),
    };
    s.notes =
        "Every qualitative feature reproduces: exponential growth as Vdd "
        "falls, 90 nm an order of magnitude cheaper than scaled nodes, "
        ">128 blow-ups at low voltage, and the non-monotonicity where "
        "22 nm needs *fewer* spares than 45/32 nm at 0.65–0.70 V (its "
        "nominal baseline is only 0.8 V). Magnitudes run ~2–3× the "
        "paper's at the lowest voltages, consistent with the heavier "
        "sign-off tail noted under Fig. 4. Area/power overhead columns "
        "match the paper exactly as functions of the spare count (that "
        "linear budget was fitted: 0.433 %/lane area, 0.164 %/spare "
        "power).";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "fig6";
    s.title = "Fig. 6 — voltage-margin delay distributions (45 nm, 600 mV)";
    s.binary = "bench_fig6_voltage_margin_distributions";
    s.in_smoke_set = true;
    s.checkpoints = {
        checkpoint("crossover_mV", "p99 crosses the target at",
                   "610–615 mV", 608.0, 616.0, "mV", 1, true),
    };
    s.notes =
        "At 45 nm/600 mV the p99 crosses the nominal-scaled target "
        "between 610 and 615 mV — the paper's figure shows exactly the "
        "615 mV curve clearing the target.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "table2";
    s.title = "Table 2 — required voltage margin [mV]";
    s.binary = "bench_table2_voltage_margin";
    s.checkpoints = {
        checkpoint("margin_mV_90nm_0.50V", "90 nm @0.5 V", "5.8 mV", 3.5,
                   7.0, "mV", 1),
        checkpoint("margin_mV_90nm_0.70V", "90 nm @0.7 V", "1.7 mV", 1.2,
                   2.8, "mV", 1),
        checkpoint("margin_mV_22nm_0.50V", "22 nm @0.5 V", "16.4 mV", 14.0,
                   21.0, "mV", 1),
        approx_band(checkpoint("margin_mV_45nm_0.60V", "45 nm @0.6 V",
                               "16.2 mV", 14.0, 18.0, "mV", 1),
                    8.0, 20.0),
    };
    s.notes =
        "90 nm and 22 nm within ~1–3 mV throughout; margins are "
        "millivolt-scale everywhere, decreasing with voltage, an order of "
        "magnitude below the supply — the paper's conclusion. One "
        "structural deviation (the ≈ row): the paper has 45 nm GP needing "
        "*larger* margins than 32 nm PTM HP; our monotone variation "
        "ordering (45 < 32) flips that pair. Reproducing the paper's "
        "inversion would require assuming the commercial 45 nm card is "
        "more variable than the predictive 32 nm card — plausible (PTM "
        "cards are optimistic) but not derivable from any number the "
        "paper states, so we kept the defensible monotone ordering. "
        "Power-overhead column matches the paper's formula exactly (DV "
        "domain = 43 % of PE power, CV² scaling).";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "table3";
    s.title = "Table 3 — combined duplication + margining (45 nm, 600 mV)";
    s.binary = "bench_table3_combined_choices";
    s.checkpoints = {
        checkpoint("power_pct_26sp", "26 spares + 0 mV", "4.3 %", 4.0, 5.2,
                   "%"),
        checkpoint("power_pct_8sp", "8 spares + margin", "2.0 %", 1.6, 2.4,
                   "%"),
        checkpoint("power_pct_2sp", "2 spares + margin", "1.7 %", 1.0, 2.0,
                   "%"),
        checkpoint("best_alpha", "minimum-power spare count", "2 spares",
                   1.5, 2.5, "", 0),
    };
    s.notes =
        "The headline result lands exactly: the U-shaped overhead curve "
        "has its minimum at **2 spares + a small margin**, the paper's "
        "pick. Our margins are ~2/3 of the paper's (Table 2, 45 nm "
        "deviation), which scales the whole column but not the ordering "
        "or the crossover.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "fig8";
    s.title = "Fig. 8 — chip delay vs margin and spares (45 nm, 600 mV)";
    s.binary = "bench_fig8_chip_delay_vs_margin";
    s.checkpoints = {
        checkpoint("combo_margin_mV_2sp", "margin needed with 2 spares",
                   "~10 mV", 4.0, 13.0, "mV", 1),
        checkpoint("combo_power_pct_2sp", "power overhead at 2 spares",
                   "1.7 %", 1.0, 2.0, "%"),
    };
    s.notes =
        "The data behind Table 3: the voltage sweep shows where the p99 "
        "clears the target and the spare sweep shows duplication closing "
        "the same gap at fixed 600 mV.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "table4";
    s.title = "Table 4 — frequency margining";
    s.binary = "bench_table4_frequency_margin";
    s.shardable = true;  // Fixed-grid MC sweep (docs/SHARDING.md).
    s.checkpoints = {
        checkpoint("tclk_ns_90nm_0.50V", "T_clk 90 nm @0.5 V",
                   "22.05 ns (ideal 50 FO4)", 22.5, 25.5, "ns"),
        checkpoint("fdrop_pct_90nm_0.50V", "drop 90 nm @0.5 V", "≤6 %", 4.0,
                   6.5, "%"),
        checkpoint("worst_drop_pct", "worst required margin", "~20 %", 18.0,
                   23.0, "%"),
    };
    s.notes =
        "Required margins: 90 nm ≤ 6 %, scaled nodes up to ~21 % at "
        "0.5 V — matching the paper's \"required delay margins reach "
        "almost 20 %, making frequency margining inappropriate\". The "
        "drop column equals Fig. 4 by construction, as in the paper; our "
        "T_clk includes the nominal-voltage sign-off factor on top of the "
        "ideal 50-FO4 period.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "fig7";
    s.title = "Fig. 7 — technique comparison (duplication vs margining)";
    s.binary = "bench_fig7_overhead_comparison";
    s.timeout_sec = 600;
    s.checkpoints = {
        checkpoint("vm_pct_45nm_0.60V", "margining 45 nm @0.6 V", "2 %",
                   1.5, 3.0, "%"),
        approx_band(checkpoint("dup_pct_45nm_0.60V",
                               "duplication 45 nm @0.6 V", "4 %", 3.0, 6.0,
                               "%"),
                    2.0, 20.0),
    };
    s.notes =
        "Both paper claims reproduce: duplication wins in the high-NTV "
        "range where variation is low (90 nm: duplication cheaper at "
        "≥0.55 V; paper's 0.6–0.7 V window), and margining takes over as "
        "voltage drops and nodes scale (45 nm @0.6 V: same winner as the "
        "paper). The duplication magnitude at 45 nm runs high because our "
        "45 nm needs more spares (see Table 1) — the ≈ row. Crossovers "
        "are visible per node (90 nm at ~0.55 V, 45/32/22 nm at "
        "~0.65–0.70 V).";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "fig9";
    s.title = "Fig. 9 — energy/delay regions";
    s.binary = "bench_fig9_energy_regions";
    s.in_smoke_set = true;
    s.checkpoints = {
        approx_band(checkpoint("energy_ratio_nominal_over_ntv",
                               "energy ↓ nominal→NTV", "~10×", 8.0, 12.0,
                               "×", 1),
                    3.0, 14.0),
        checkpoint("delay_ratio_ntv_over_nominal", "delay ↑ nominal→NTV",
                   "~10×", 8.0, 12.0, "×", 1, true),
        checkpoint("minimum_energy_vdd", "min-energy point",
                   "sub-threshold (< Vth0 = 0.39 V)", 0.30, 0.39, "V", 3,
                   true),
    };
    s.notes =
        "All qualitative structure present (energy minimum below "
        "threshold, leakage dominance in deep sub-threshold, NTV as the "
        "balance point). The 10× energy claim includes system-level "
        "effects our per-op CV² + leakage model does not capture; ~4× is "
        "the pure circuit-level figure — the ≈ row.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "fig11";
    s.title = "Fig. 11 — variation vs chain length";
    s.binary = "bench_fig11_variation_vs_chain_length";
    s.in_smoke_set = true;
    s.checkpoints = {
        checkpoint("chain1_pct_90nm_0.55V", "90 nm @0.55 V, N = 1",
                   "single-gate extreme", 25.5, 29.0, "%", 2, true),
        checkpoint("chain50_pct_90nm_0.55V", "90 nm @0.55 V, N = 50",
                   "saturating", 7.4, 8.4, "%", 2, true),
        checkpoint("chain200_pct_90nm_0.55V", "90 nm @0.55 V, N = 200",
                   "plateau", 6.7, 7.7, "%", 2, true),
    };
    s.notes =
        "3σ/μ falls steeply for the first ~20 stages and saturates; the "
        "per-stage improvement decays by ~350× from N = 1 to N = 200 — "
        "the paper's \"a very long chain will not solve the timing "
        "variation problem\", because the systematic component survives "
        "averaging.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "fig12";
    s.title = "Fig. 12 — sparing placement (global vs local)";
    s.binary = "bench_fig12_sparing_placement";
    s.in_smoke_set = true;
    s.checkpoints = {
        checkpoint("burst_global_covered", "global pool repairs the burst",
                   "covered", 0.5, 1.5, "", 0, true),
        checkpoint("burst_local_covered", "local 1-per-4 repairs the burst",
                   "NOT covered", -0.5, 0.5, "", 0, true),
        checkpoint("iid_global_cov_p0.10", "global coverage, p = 0.10",
                   ">99.99 %", 0.999, 1.0, "", 4, true),
        checkpoint("iid_local_cov_p0.10", "local coverage, p = 0.10",
                   "collapses", 0.0, 0.07, "", 4, true),
        checkpoint("spatial_global_cov_k1.05", "spatial, global, k = 1.05",
                   "best", 0.45, 0.65, "", 4),
        checkpoint("spatial_local_cov_k1.05", "spatial, local, k = 1.05",
                   "worst", 0.21, 0.41, "", 4),
    };
    s.notes =
        "The Fig. 12(c) example reproduces verbatim (10 FUs, FU-2/FU-3 "
        "faulty: local 1-per-4 cannot repair, the global XRAM bypass maps "
        "logical 2→4, 3→5, …). At equal budget (32 spares / 128 lanes) "
        "global sparing holds >99.99 % coverage to 10 % lane-fault "
        "probability while local 1-per-4 collapses; under correlated "
        "(shared-die) and spatially-correlated delay faults global also "
        "dominates at every clock setting, with a pooled hybrid "
        "recovering most of the gap.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ext_analytic_exact";
    s.title = "Extension — exact order-statistics chip model vs MC";
    s.binary = "bench_ext_analytic_exact";
    s.checkpoints = {
        checkpoint("analytic_p99_fo4_1.00V", "analytic baseline p99 @1 V",
                   "(= MC)", 54.4, 54.7, "FO4", 3),
        checkpoint("mc_p99_fo4_1.00V", "MC baseline p99 @1 V", "(= exact)",
                   54.4, 54.7, "FO4", 3),
        checkpoint("analytic_spares_0.50V", "exact spares @0.5 V",
                   "(≈ MC)", 65.0, 80.0, "", 0),
        checkpoint("mc_spares_0.50V", "MC spares @0.5 V", "(≈ exact)", 65.0,
                   85.0, "", 0),
    };
    s.notes =
        "The closed-form order-statistics chip model agrees with the "
        "10k-sample MC engine to ~0.02 FO4 on the baseline and lands "
        "inside the MC bootstrap CIs on every drop value; Table-1 spare "
        "counts agree within MC noise at 0.5 V and exactly at ≥0.6 V.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ext_body_bias";
    s.title = "Extension — adaptive body bias vs supply margining";
    s.binary = "bench_ext_body_bias";
    s.timeout_sec = 600;
    s.checkpoints = {
        checkpoint("dvth_mV_90nm_0.55V", "required ΔVth, 90 nm @0.55 V",
                   "millivolt-scale", 1.5, 4.5, "mV"),
        checkpoint("abb_power_pct_90nm_0.55V", "ABB power, 90 nm @0.55 V",
                   "≲ ⅓ of margining", 0.0, 1.0, "%"),
        checkpoint("vm_power_pct_90nm_0.55V",
                   "margining power, 90 nm @0.55 V", "(Table 2 column)",
                   0.5, 2.5, "%"),
    };
    s.notes =
        "Millivolt Vth shifts meet the same targets as Table 2's supply "
        "margins at roughly a third of the power while leakage is a small "
        "share; the advantage erodes toward deep NTV as leakage grows — "
        "consistent with the EVAL work the paper cites.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ext_yield_binning";
    s.title = "Extension — parametric yield and speed binning (90 nm)";
    s.binary = "bench_ext_yield_binning";
    s.checkpoints = {
        checkpoint("t99_ns_alpha0", "99 %-yield clock, no spares",
                   "14.95 ns", 14.7, 15.2, "ns", 3),
        checkpoint("t99_ns_alpha28", "99 %-yield clock, 28 spares",
                   "14.33 ns", 14.1, 14.6, "ns", 3),
        checkpoint("fast_bin_frac_alpha28", "fastest-bin share, 28 spares",
                   "~100 %", 0.99, 1.0, "", 3),
    };
    s.notes =
        "The manufacturer's dual of the paper's fixed-percentile "
        "sign-off: the spare budget converts directly into sellable parts "
        "at a fixed clock — 28 spares move essentially all parts into the "
        "fastest speed bin.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ext_multi_pe";
    s.title = "Extension — 4-PE system throughput under variation";
    s.binary = "bench_ext_multi_pe";
    s.checkpoints = {
        checkpoint("mean_tax_pct_0sp", "mean variation tax, no spares",
                   "a few percent", 2.0, 3.5, "%"),
        checkpoint("worst_tax_pct_0sp", "worst tax, no spares", "~6 %", 4.0,
                   8.0, "%"),
        checkpoint("mean_tax_pct_6sp", "mean tax, 6 spares", "~0 %", 0.0,
                   0.5, "%"),
    };
    s.notes =
        "With per-PE clocks binned to memory-clock multiples, an unspared "
        "4-PE batch pays a measurable throughput tax vs the uniform "
        "ideal; 6 spares collapse all PEs into one bin and eliminate it — "
        "the paper's lane-level technique visible at the SoC level.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ext_ssta";
    s.title = "Extension — SSTA lane model vs the iid assumption";
    s.binary = "bench_ext_ssta";
    s.checkpoints = {
        checkpoint("iid_p99_fo4", "iid formula p99", "52.27 FO4", 52.1,
                   52.5, "FO4", 2),
        checkpoint("mc_p99_fo4_shared0", "exact MC p99, no shared logic",
                   "≈ iid", 52.0, 52.45, "FO4", 2),
        checkpoint("mc_p99_fo4_shared40", "exact MC p99, 40/50 shared",
                   "tightens below iid", 51.8, 52.2, "FO4", 2),
        checkpoint("ssta_p99_fo4_shared40", "block-SSTA p99, 40/50 shared",
                   "stays conservative", 52.1, 52.5, "FO4", 2),
    };
    s.notes =
        "Sharing launch logic between paths tightens the exact lane "
        "maximum while independence-assuming models (the paper's, and "
        "block-based SSTA) stay at the conservative extreme. The gap is "
        "the price of the iid assumption — i.e. where the paper is "
        "conservative.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ext_spice_mc";
    s.title = "Extension — transient-simulator Monte Carlo vs the model";
    s.binary = "bench_ext_spice_mc";
    s.checkpoints = {
        checkpoint("spice_3smu_pct_1.00V", "transient 3σ/μ @1.0 V",
                   "≈ model (6.2 %)", 5.5, 8.0, "%"),
        checkpoint("spice_3smu_pct_0.50V", "transient 3σ/μ @0.5 V",
                   "≈ model (14.6 %)", 13.0, 19.0, "%"),
        checkpoint("model_3smu_pct_0.50V", "analytic 3σ/μ @0.5 V",
                   "14.57 %", 13.5, 15.5, "%"),
    };
    s.notes =
        "80 full MNA transient solves per voltage agree with the analytic "
        "chain model on both the mean scaling and the relative spread "
        "within the ~20 % sampling error of 80 samples — the statistical "
        "engine stands on simulated circuits, not just fitted formulas.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ext_temperature";
    s.title = "Extension — temperature inversion at NTV";
    s.binary = "bench_ext_temperature";
    s.in_smoke_set = true;
    s.checkpoints = {
        checkpoint("crossover_V_90nm", "inversion crossover, 90 nm",
                   "0.537 V", 0.52, 0.56, "V", 3, true),
        checkpoint("crossover_V_22nm", "inversion crossover, 22 nm",
                   "0.597 V", 0.58, 0.61, "V", 3, true),
        checkpoint("cold_penalty_pct_0.45V", "cold-corner penalty @0.45 V",
                   "~+39 %", 35.0, 43.0, "%", 1, true),
    };
    s.notes =
        "The hot/cold crossover voltage sits inside the paper's "
        "0.50–0.70 V sweep for every node. Below it the cold corner "
        "dominates, so the paper's single-temperature margins under-cover "
        "around its favourite 0.5–0.55 V operating points — NTV sign-off "
        "must check both temperature extremes.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ablation_signoff";
    s.title = "Ablation — sign-off percentile sensitivity";
    s.binary = "bench_ablation_signoff";
    s.notes =
        "Quantifies how the spare counts and performance drops move with "
        "the sign-off percentile. Direction worth knowing before using "
        "Table 1 for design: a *tighter* sign-off needs *fewer* spares, "
        "because duplication tightens the NTV tail faster than the "
        "baseline tail grows. Prose-only artifact — no gated checkpoints.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ablation_die_correlation";
    s.title = "Ablation — die-level correlation";
    s.binary = "bench_ablation_die_correlation";
    s.notes =
        "The i.i.d.-path assumption is the paper's own; this ablation "
        "shows duplication would look far weaker under full die-level "
        "correlation. Prose-only artifact — no gated checkpoints.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ablation_path_count";
    s.title = "Ablation — critical-path count per lane";
    s.binary = "bench_ablation_path_count";
    s.notes =
        "Sensitivity of the lane model to the paper's 100-paths-per-lane "
        "choice. Prose-only artifact — no gated checkpoints.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "soda_kernels";
    s.title = "SODA kernels — functional SIMD substrate";
    s.binary = "bench_soda_kernels";
    s.in_smoke_set = true;
    s.notes =
        "Functional check that the SODA-style wide-SIMD substrate (FIR, "
        "correlator kernels on the PE model) executes; the timing results "
        "feed the multi-PE extension. Prose-only artifact — no gated "
        "checkpoints.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ext_soda_gemm";
    s.title = "Extension — tiled GEMM on the event fabric (bypass mid-kernel)";
    s.binary = "bench_soda_system";
    s.args = {"--workload", "gemm"};
    s.in_smoke_set = true;
    s.checkpoints = {
        checkpoint("gemm_ok", "bit-exact vs wrap-mod-2^16 reference",
                   "match", 0.5, 1.5, "", 0, true),
        checkpoint("gemm_simd_cycles", "SIMD cycles (timing-invariant)",
                   "(= golden RunStats)", 120.0, 150.0, "", 0, true),
        checkpoint("gemm_bypass_activations",
                   "spare-lane bypasses while running", "fires once", 0.5,
                   1.5, "", 0, true),
        checkpoint("gemm_mem_stall_cycles", "banked-memory stall cycles",
                   "(model)", 50.0, 95.0, "", 0, true),
    };
    s.notes =
        "Register-tiled 8×8×128 GEMM run as event-driven components with "
        "two variation-slowed FUs and six spares: the scheduler detects "
        "the slow SIMD word after the configured window and remaps the "
        "lane map through the XRAM bypass *mid-kernel*, after which the "
        "word latency returns to the binned clock. Output C is bit-exact "
        "against the wrapping reference regardless of tiling order, and "
        "the cycle pools equal the committed golden RunStats exactly "
        "(tests/soda/fabric_diff_test.cc gates this on every kernel).";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ext_soda_stencil";
    s.title = "Extension — 5-point stencil on the banked scratchpad";
    s.binary = "bench_soda_system";
    s.args = {"--workload", "stencil"};
    s.in_smoke_set = true;
    s.checkpoints = {
        checkpoint("stencil_ok", "bit-exact vs reference", "match", 0.5,
                   1.5, "", 0, true),
        checkpoint("stencil_simd_cycles", "SIMD cycles (timing-invariant)",
                   "(= golden RunStats)", 95.0, 115.0, "", 0, true),
        checkpoint("stencil_row_hits", "row-buffer hits",
                   "reuse of open rows", 4.0, 12.0, "", 0, true),
        checkpoint("stencil_row_misses", "row-buffer misses", "(model)",
                   18.0, 32.0, "", 0, true),
    };
    s.notes =
        "Circular 5-point (von Neumann) stencil streaming rows through "
        "the banked scratchpad model: the north/south taps revisit rows "
        "the sliding window just opened, so a fraction of accesses hit "
        "the open row buffer — the locality the flat-latency model "
        "cannot see. Output matches the wrapping reference on both "
        "engines.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ext_soda_sort";
    s.title = "Extension — bitonic sort network on the SIMD word";
    s.binary = "bench_soda_system";
    s.args = {"--workload", "sort"};
    s.in_smoke_set = true;
    s.checkpoints = {
        checkpoint("sort_ok", "sorted output matches std::sort", "match",
                   0.5, 1.5, "", 0, true),
        checkpoint("sort_simd_cycles", "SIMD cycles (engine-invariant)",
                   "28 steps × 4 SIMD ops", 105.0, 120.0, "", 0, true),
    };
    s.notes =
        "Full 128-lane bitonic network (stages·(stages+1)/2 = 28 "
        "compare-exchange steps) built from shuffle/min/max/select on "
        "XOR-partner contexts, the classic SIMD formulation: "
        "data-independent control flow, so the cycle count is exactly "
        "the network depth. Handles duplicates and ±32768 extremes.";
    specs.push_back(std::move(s));
  }

  {
    ExperimentSpec s;
    s.id = "ext_soda_banks";
    s.title = "Extension — bank-count sweep under a 4-PE mixed workload";
    s.binary = "bench_soda_system";
    s.args = {"--workload", "banks"};
    s.in_smoke_set = true;
    s.checkpoints = {
        checkpoint("banks1_bank_conflicts", "conflicts, 1 bank",
                   "serialized controller", 40.0, 65.0, "", 0, true),
        checkpoint("banks8_bank_conflicts", "conflicts, 8 banks",
                   "mostly drained", 4.0, 12.0, "", 0, true),
        checkpoint("banks1_makespan_ticks", "makespan, 1 bank", "longest",
                   460.0, 510.0, "ticks", 0, true),
        checkpoint("banks8_makespan_ticks", "makespan, 8 banks",
                   "shortest", 400.0, 440.0, "ticks", 0, true),
        checkpoint("banks8_events", "fabric events (bank-invariant)",
                   "(workload property)", 2100.0, 2300.0, "", 0, true),
    };
    s.notes =
        "Four heterogeneously binned PEs (memory-clock multiples 1/2/1/3) "
        "run GEMM, stencil, bitonic sort and FIR concurrently against ONE "
        "shared memory controller. Sweeping the bank count 1→8 drains the "
        "conflicts monotonically (52→8 at the committed configuration) "
        "and shortens the makespan, while the event count stays "
        "bank-invariant — contention changes *when* messages fire, never "
        "*how many*, which is the fabric's conservation property.";
    specs.push_back(std::move(s));
  }

  // Analytic-backend twins (PR 8). Every tolerance-banded experiment
  // whose bench accepts --backend gains a `<id>_analytic` twin that
  // reruns the identical artifact through the closed-form SSTA backend.
  // The twins inherit the SAME bands — the analytic model must land
  // where sampled MC lands, orders of magnitude faster — which is the
  // cross-validation the CI ssta-validate job gates with
  // check_report.py. Twins run deterministically (no sampling), so they
  // stay out of the smoke set and need no reduced budget.
  const char* const kAnalyticTwins[] = {
      "table1", "table2", "table3", "table4",           "fig4",
      "fig6",   "fig7",   "fig8",   "ext_yield_binning",
  };
  for (const char* base_id : kAnalyticTwins) {
    const ExperimentSpec* base = nullptr;
    for (const ExperimentSpec& s : specs) {
      if (s.id == base_id) {
        base = &s;
        break;
      }
    }
    ExperimentSpec twin = *base;
    twin.id = base->id + std::string("_analytic");
    twin.title = base->title + std::string(" — analytic backend");
    twin.args.emplace_back("--backend");
    twin.args.emplace_back("analytic");
    twin.in_smoke_set = false;
    twin.shardable = false;  // Analytic runs have no MC budget to split.
    twin.smoke_args.clear();
    twin.notes =
        "Analytic-backend twin of `" + base->id +
        "`: the same artifact evaluated with the closed-form SSTA chip "
        "law (`--backend analytic`, docs/SSTA.md) instead of sampled "
        "Monte Carlo. Judged against the identical tolerance bands — "
        "agreement here is the cross-validation of the lognormal moment "
        "fit and the order-statistics sparing law, at a wall clock "
        "orders of magnitude below the MC run (gated >= 50x in CI).";
    specs.push_back(std::move(twin));
  }

  return specs;
}

}  // namespace

const std::vector<ExperimentSpec>& registry() {
  static const std::vector<ExperimentSpec> specs = build_registry();
  return specs;
}

}  // namespace ntv::harness
