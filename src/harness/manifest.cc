#include "harness/manifest.h"

#include <algorithm>

#include "harness/json.h"
#include "harness/runner.h"
#include "obs/json_writer.h"

namespace ntv::harness {

Verdict classify(const Checkpoint& cp, double measured) noexcept {
  if (measured >= cp.lo && measured <= cp.hi) return Verdict::kPass;
  if (measured >= cp.approx_lo && measured <= cp.approx_hi) {
    return Verdict::kApprox;
  }
  return Verdict::kFail;
}

namespace {

/// Worst checkpoint verdict; pass when the experiment ran ok and has no
/// checkpoints (prose-only artifact), fail when it did not run.
Verdict experiment_verdict(const ExperimentOutcome& outcome) {
  if (outcome.status != "ok") return Verdict::kFail;
  Verdict worst = Verdict::kPass;
  for (const CheckpointResult& cp : outcome.checkpoints) {
    worst = std::min(worst, cp.verdict);
  }
  return worst;
}

/// Resolves checkpoint results for one experiment from a key->value
/// lookup function.
template <typename Lookup>
void fill_checkpoints(const ExperimentSpec& spec, const Lookup& lookup,
                      ExperimentOutcome& outcome) {
  outcome.checkpoints.clear();
  outcome.checkpoints.reserve(spec.checkpoints.size());
  for (const Checkpoint& cp : spec.checkpoints) {
    CheckpointResult result;
    result.spec = &cp;
    if (const std::optional<double> v = lookup(cp.key)) {
      result.present = true;
      result.measured = *v;
      result.verdict = classify(cp, *v);
    }
    outcome.checkpoints.push_back(result);
  }
  outcome.verdict = experiment_verdict(outcome);
}

}  // namespace

ReproManifest aggregate(const std::vector<ExperimentSpec>& specs,
                        const std::string& out_dir, bool smoke) {
  ReproManifest manifest;
  manifest.smoke = smoke;
  const auto journal = Journal(journal_path(out_dir)).load();

  for (const ExperimentSpec& spec : specs) {
    ExperimentOutcome outcome;
    outcome.id = spec.id;

    const auto entry = journal.find(spec.id);
    if (entry == journal.end()) {
      outcome.status = "missing";
    } else {
      outcome.status = std::string(run_status_name(entry->second.status));
      outcome.attempts = entry->second.attempts;
      outcome.elapsed_ms = entry->second.elapsed_ms;
    }

    std::optional<JsonValue> report;
    if (entry != journal.end() &&
        entry->second.status == RunStatus::kOk) {
      if (const auto text = read_text_file(entry->second.report)) {
        report = JsonValue::parse(*text);
      }
      if (!report) outcome.status = "failed";  // Report lost since the run.
    }

    fill_checkpoints(
        spec,
        [&](const std::string& key) -> std::optional<double> {
          if (!report) return std::nullopt;
          const JsonValue* v = report->find_path("results.values." + key);
          if (!v || !v->is_number()) return std::nullopt;
          return v->as_number();
        },
        outcome);
    manifest.experiments.push_back(std::move(outcome));
  }
  return manifest;
}

std::string manifest_to_json(const ReproManifest& manifest) {
  obs::JsonWriter w;
  w.begin_object();
  w.key("schema_version").value(1);
  w.key("kind").value("repro-manifest");
  w.key("smoke").value(manifest.smoke);
  w.key("experiments").begin_array();
  for (const ExperimentOutcome& e : manifest.experiments) {
    w.begin_object();
    w.key("id").value(e.id);
    w.key("status").value(e.status);
    w.key("attempts").value(e.attempts);
    w.key("elapsed_ms").value(static_cast<std::int64_t>(e.elapsed_ms));
    w.key("verdict").value(verdict_name(e.verdict));
    w.key("values").begin_object();
    for (const CheckpointResult& cp : e.checkpoints) {
      if (cp.present) w.key(cp.spec->key).value(cp.measured);
    }
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

std::optional<ReproManifest> manifest_from_json(
    const std::vector<ExperimentSpec>& specs, std::string_view json,
    std::string* error) {
  const auto doc = JsonValue::parse(json, error);
  if (!doc) return std::nullopt;
  const JsonValue* kind = doc->find("kind");
  if (!doc->is_object() || !kind || kind->as_string() != "repro-manifest") {
    if (error) *error = "not a repro-manifest document";
    return std::nullopt;
  }
  const JsonValue* experiments = doc->find("experiments");
  if (!experiments || !experiments->is_array()) {
    if (error) *error = "missing experiments array";
    return std::nullopt;
  }

  ReproManifest manifest;
  if (const JsonValue* smoke = doc->find("smoke")) {
    manifest.smoke = smoke->as_bool();
  }

  // Index the stored experiments by id, then walk the registry so the
  // output keeps registry order and covers every spec.
  std::map<std::string, const JsonValue*> stored;
  for (const JsonValue& item : experiments->items()) {
    if (const JsonValue* id = item.find("id")) {
      stored[id->as_string()] = &item;
    }
  }

  for (const ExperimentSpec& spec : specs) {
    ExperimentOutcome outcome;
    outcome.id = spec.id;
    const auto it = stored.find(spec.id);
    const JsonValue* item = it == stored.end() ? nullptr : it->second;
    if (!item) {
      outcome.status = "missing";
    } else {
      const JsonValue* status = item->find("status");
      outcome.status = status ? status->as_string() : "missing";
      if (const JsonValue* v = item->find("attempts")) {
        outcome.attempts = static_cast<int>(v->as_number());
      }
      if (const JsonValue* v = item->find("elapsed_ms")) {
        outcome.elapsed_ms = static_cast<std::int64_t>(v->as_number());
      }
    }
    const JsonValue* values = item ? item->find("values") : nullptr;
    fill_checkpoints(
        spec,
        [&](const std::string& key) -> std::optional<double> {
          const JsonValue* v = values ? values->find(key) : nullptr;
          if (!v || !v->is_number()) return std::nullopt;
          return v->as_number();
        },
        outcome);
    manifest.experiments.push_back(std::move(outcome));
  }
  return manifest;
}

}  // namespace ntv::harness
