#include "harness/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ntv::harness {
namespace {

/// Recursive-descent parser state over the input text.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> run(std::string* error) {
    JsonValue value;
    if (!parse_value(value)) {
      if (error) *error = message_;
      return std::nullopt;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after document");
      if (error) *error = message_;
      return std::nullopt;
    }
    return value;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool fail(const char* reason) {
    if (message_.empty()) {
      message_ = "byte " + std::to_string(pos_) + ": " + reason;
    }
    return false;
  }

  bool consume(char c, const char* what) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c) return fail(what);
    ++pos_;
    return true;
  }

  bool parse_value(JsonValue& out) {
    skip_ws();
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return parse_object(out);
      case '[':
        return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue::make_string(std::move(s));
        return true;
      }
      case 't':
        if (text_.substr(pos_, 4) != "true") return fail("bad literal");
        pos_ += 4;
        out = JsonValue::make_bool(true);
        return true;
      case 'f':
        if (text_.substr(pos_, 5) != "false") return fail("bad literal");
        pos_ += 5;
        out = JsonValue::make_bool(false);
        return true;
      case 'n':
        if (text_.substr(pos_, 4) != "null") return fail("bad literal");
        pos_ += 4;
        out = JsonValue();
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    if (!consume('{', "expected '{'")) return false;
    std::map<std::string, JsonValue> members;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      out = JsonValue::make_object(std::move(members));
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':', "expected ':'")) return false;
      JsonValue value;
      if (!parse_value(value)) return false;
      members[std::move(key)] = std::move(value);
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        out = JsonValue::make_object(std::move(members));
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool parse_array(JsonValue& out) {
    if (!consume('[', "expected '['")) return false;
    std::vector<JsonValue> items;
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      out = JsonValue::make_array(std::move(items));
      return true;
    }
    while (true) {
      JsonValue value;
      if (!parse_value(value)) return false;
      items.push_back(std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        out = JsonValue::make_array(std::move(items));
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return fail("expected string");
    }
    ++pos_;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return fail("bad \\u escape");
            }
          }
          // The repo's writer only \u-escapes control characters; encode
          // the BMP code point as UTF-8 (no surrogate-pair handling).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool parse_number(JsonValue& out) {
    skip_ws();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("expected value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == token.c_str() || *end != '\0') return fail("bad number");
    out = JsonValue::make_number(v);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string message_;
};

}  // namespace

// JsonValue exposes no mutable API, so the parser (and tests) build
// instances through these factories.
JsonValue JsonValue::make_number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::make_string(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::make_bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::make_object(std::map<std::string, JsonValue> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(members);
  return out;
}

JsonValue JsonValue::make_array(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(items);
  return out;
}

std::optional<JsonValue> JsonValue::parse(std::string_view text,
                                          std::string* error) {
  return Parser(text).run(error);
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

const JsonValue* JsonValue::find_path(std::string_view dotted) const {
  if (dotted.empty()) return this;
  if (kind_ != Kind::kObject) return nullptr;
  // Longest joined prefix first, so keys containing '.' resolve.
  for (std::size_t cut = dotted.size();;) {
    const std::string_view head = dotted.substr(0, cut);
    if (const JsonValue* child = find(head)) {
      if (cut == dotted.size()) return child;
      if (const JsonValue* leaf = child->find_path(dotted.substr(cut + 1))) {
        return leaf;
      }
    }
    const std::size_t dot = dotted.rfind('.', cut ? cut - 1 : 0);
    if (dot == std::string_view::npos || dot == 0) return nullptr;
    cut = dot;
  }
}

std::optional<std::string> read_text_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return std::nullopt;
  std::string out;
  char buf[1 << 14];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) return std::nullopt;
  return out;
}

}  // namespace ntv::harness
