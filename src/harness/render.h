// EXPERIMENTS.md generator.
//
// Renders the paper-vs-measured document from (registry, manifest) — no
// other inputs, no timestamps, no environment reads — so the same
// manifest always renders the same bytes. That byte-determinism is what
// lets CI regenerate the doc and fail on any diff against the committed
// file (the repro-smoke job), turning EXPERIMENTS.md from a
// hand-maintained claim into a checked build artifact.
#pragma once

#include <string>
#include <vector>

#include "harness/manifest.h"
#include "harness/spec.h"

namespace ntv::harness {

/// Renders the full EXPERIMENTS.md markdown (trailing newline included).
/// Experiments appear in registry order; each section shows the
/// regenerate command, the checkpoint table (paper | measured | verdict)
/// and the spec's prose notes. Measured cells of experiments that did
/// not run render as "—" with a ✘ verdict.
std::string render_markdown(const std::vector<ExperimentSpec>& specs,
                            const ReproManifest& manifest);

/// Formats a measured value with a checkpoint's precision and unit
/// (exposed for the golden tests).
std::string format_measured(const Checkpoint& cp, double value);

}  // namespace ntv::harness
