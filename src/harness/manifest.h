// Aggregated reproduction manifest (EXPERIMENTS.json).
//
// The aggregator folds the per-experiment bench --report JSON files (plus
// the journal's run outcomes) into one machine-readable manifest: for
// every spec, the measured value of every declared checkpoint and its
// ✔/≈/✘ classification against the spec's tolerance bands. The manifest
// is both the CI gate input (drift = any checkpoint outside its band)
// and the sole data source of the EXPERIMENTS.md generator (render.h) —
// the committed markdown is a pure function of (registry, manifest).
//
// Schema (version 1, docs/REPRODUCTION.md):
//   {
//     "schema_version": 1,
//     "kind": "repro-manifest",
//     "smoke": false,
//     "experiments": [
//       { "id": "fig1", "status": "ok"|"failed"|"timeout"|"missing",
//         "attempts": 1, "elapsed_ms": 163, "verdict": "pass",
//         "values": { "<checkpoint key>": <measured number>, ... } }, ... ]
//   }
// Only checkpoint keys are copied out of the reports: the manifest pins
// exactly the numbers the doc renders, nothing incidental.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "harness/journal.h"
#include "harness/spec.h"

namespace ntv::harness {

/// Measured state of one checkpoint.
struct CheckpointResult {
  const Checkpoint* spec = nullptr;  ///< Points into the registry.
  bool present = false;              ///< Key found in the report/manifest.
  double measured = 0.0;
  Verdict verdict = Verdict::kFail;  ///< kFail when absent.
};

/// Measured state of one experiment.
struct ExperimentOutcome {
  std::string id;
  /// "ok" | "failed" | "timeout" | "missing" (no report/journal entry).
  std::string status;
  int attempts = 0;
  std::int64_t elapsed_ms = 0;
  std::vector<CheckpointResult> checkpoints;  ///< Registry order.
  /// Worst checkpoint verdict; kPass for experiments with no
  /// checkpoints that ran "ok" (prose-only artifacts).
  Verdict verdict = Verdict::kFail;
};

/// The whole aggregated suite, in registry order.
struct ReproManifest {
  bool smoke = false;
  std::vector<ExperimentOutcome> experiments;
};

/// Classifies one measured value against a checkpoint's bands.
Verdict classify(const Checkpoint& cp, double measured) noexcept;

/// Builds the manifest for `specs` from an out_dir produced by
/// run_suite(): reads <out_dir>/journal.jsonl and every
/// <out_dir>/reports/<id>.json. Experiments with no journal entry get
/// status "missing" (and a kFail verdict if they declare checkpoints).
ReproManifest aggregate(const std::vector<ExperimentSpec>& specs,
                        const std::string& out_dir, bool smoke);

/// Serializes the manifest as pretty-stable JSON (sorted keys, fixed
/// field order) — the EXPERIMENTS.json artifact.
std::string manifest_to_json(const ReproManifest& manifest);

/// Parses EXPERIMENTS.json back, re-resolving checkpoints and verdicts
/// against `specs` (the registry stays the source of truth for bands;
/// stored verdicts are informative only). Returns std::nullopt with
/// `*error` set on parse/shape errors. Experiments present in specs but
/// absent from the JSON come back as status "missing".
std::optional<ReproManifest> manifest_from_json(
    const std::vector<ExperimentSpec>& specs, std::string_view json,
    std::string* error = nullptr);

}  // namespace ntv::harness
