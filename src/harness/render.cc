#include "harness/render.h"

#include <cstdio>

namespace ntv::harness {
namespace {

constexpr const char* kHeader =
    "# EXPERIMENTS — paper vs. measured\n"
    "\n"
    "<!-- GENERATED FILE — do not edit by hand.\n"
    "     Regenerate with:  ntvsim_repro run --bin-dir build/bench "
    "--out-dir repro\n"
    "                       ntvsim_repro render --manifest "
    "repro/EXPERIMENTS.json --out EXPERIMENTS.md\n"
    "     Specs live in src/harness/registry.cc; see "
    "docs/REPRODUCTION.md. -->\n"
    "\n"
    "Every table and figure of the paper, the command that regenerates "
    "it, and\n"
    "a paper-vs-measured comparison. \"Measured\" values come from the "
    "bench\n"
    "binaries in `bench/` (10,000-sample Monte Carlo where the paper "
    "uses\n"
    "10,000; 1,000 where it uses 1,000; fixed seeds, thread-count "
    "independent).\n"
    "Absolute silicon numbers are not expected to match — the substrate "
    "is a\n"
    "calibrated analytic model, not the authors' HSPICE decks — but the "
    "shape\n"
    "(who wins, by what factor, where crossovers fall) is the "
    "reproduction\n"
    "target, per DESIGN.md §4.\n"
    "\n"
    "Legend: ✔ inside the spec's strict band · ≈ right shape, magnitude "
    "off\n"
    "(inside the loose band) · ✘ deviation or missing value. Bands are\n"
    "declared per checkpoint in `src/harness/registry.cc`; the CI\n"
    "`repro-smoke` job re-runs a reduced-budget subset and fails when "
    "any\n"
    "smoke-gated checkpoint leaves its band or this file stops matching "
    "its\n"
    "regeneration.\n";

const ExperimentOutcome* find_outcome(const ReproManifest& manifest,
                                      const std::string& id) {
  for (const ExperimentOutcome& e : manifest.experiments) {
    if (e.id == id) return &e;
  }
  return nullptr;
}

}  // namespace

std::string format_measured(const Checkpoint& cp, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", cp.precision, value);
  std::string out(buf);
  if (!cp.unit.empty()) {
    if (cp.unit != "×") out += ' ';  // "2.77×", but "5.97 %" / "4.7 mV".
    out += cp.unit;
  }
  return out;
}

std::string render_markdown(const std::vector<ExperimentSpec>& specs,
                            const ReproManifest& manifest) {
  std::string md(kHeader);

  for (const ExperimentSpec& spec : specs) {
    const ExperimentOutcome* outcome = find_outcome(manifest, spec.id);

    md += "\n## ";
    md += spec.title;
    md += "\n\n`./build/bench/";
    md += spec.binary;
    md += " --artifact_only";
    for (const std::string& arg : spec.args) {
      md += ' ';
      md += arg;
    }
    md += "`\n";

    if (!spec.checkpoints.empty()) {
      md += "\n| checkpoint | paper | measured | |\n";
      md += "|---|---:|---:|:-:|\n";
      for (std::size_t i = 0; i < spec.checkpoints.size(); ++i) {
        const Checkpoint& cp = spec.checkpoints[i];
        const CheckpointResult* result =
            outcome && i < outcome->checkpoints.size()
                ? &outcome->checkpoints[i]
                : nullptr;
        md += "| ";
        md += cp.label;
        md += " | ";
        md += cp.paper;
        md += " | ";
        if (result && result->present) {
          md += format_measured(cp, result->measured);
          md += " | ";
          md += verdict_glyph(result->verdict);
        } else {
          md += "— | ✘";
        }
        md += " |\n";
      }
    }

    // Status line for experiments that did not complete, so a rendered
    // doc from a partial manifest is visibly partial.
    if (!outcome || outcome->status != "ok") {
      md += "\n*Run status: ";
      md += outcome ? outcome->status : "missing";
      md += " — measured values unavailable.*\n";
    }

    if (!spec.notes.empty()) {
      md += '\n';
      md += spec.notes;
      if (spec.notes.back() != '\n') md += '\n';
    }
  }
  return md;
}

}  // namespace ntv::harness
