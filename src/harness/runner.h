// Supervised batch runner for the reproduction suite.
//
// Executes each registered experiment's bench binary as a child process
// (`<bin_dir>/<binary> --artifact_only --report <out_dir>/reports/<id>.json
// <args...>`), with a per-experiment watchdog timeout (the child is
// SIGKILLed past its deadline), bounded retries, per-experiment stdout
// logs under <out_dir>/logs/, and the JSONL checkpoint journal
// (journal.h) so an interrupted sweep resumes from the last completed
// experiment. Linux/POSIX only, like the rest of the toolchain.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "harness/journal.h"
#include "harness/spec.h"

namespace ntv::harness {

/// Options of one `ntvsim_repro run` invocation.
struct RunOptions {
  std::string bin_dir;  ///< Directory holding the bench binaries.
  std::string out_dir;  ///< Reports, logs and journal root (created).
  /// Reduced-budget mode: only specs with in_smoke_set run, each with its
  /// smoke_args appended, and verdicts gate only smoke checkpoints.
  bool smoke = false;
  /// Replay the journal and skip experiments already completed "ok" with
  /// an existing report file. Off -> every experiment reruns.
  bool resume = true;
  /// When non-empty, run only these experiment ids (still subject to the
  /// smoke filter).
  std::vector<std::string> only;
  int timeout_sec_override = 0;   ///< >0 replaces every spec's timeout.
  int max_attempts_override = 0;  ///< >0 replaces every spec's retries.
  /// Shard each `shardable` spec's Monte Carlo budget across this many
  /// concurrent worker subprocesses, then merge their tapes into the
  /// final report (byte-identical to shards=1; docs/SHARDING.md).
  /// 1 = normal unsharded children. Non-shardable specs ignore this.
  int shards = 1;
  std::FILE* log = nullptr;       ///< Progress stream; nullptr = stdout.
};

/// Outcome of one experiment within a suite run.
struct ExperimentRun {
  const ExperimentSpec* spec = nullptr;
  JournalEntry entry;
  bool resumed = false;  ///< Skipped because the journal had it "ok".
};

/// Outcome of a whole suite run.
struct SuiteRun {
  std::vector<ExperimentRun> experiments;
  int ran = 0;      ///< Executed this invocation.
  int resumed = 0;  ///< Skipped via the journal.
  int failed = 0;   ///< status != ok after all retries.
};

/// Derived paths inside an out_dir (shared by runner and aggregator).
std::string journal_path(const std::string& out_dir);
std::string report_path(const std::string& out_dir, const std::string& id);
std::string log_path(const std::string& out_dir, const std::string& id);
std::string manifest_path(const std::string& out_dir);
/// Tape directory of one sharded experiment's workers.
std::string shard_dir_path(const std::string& out_dir, const std::string& id);
/// Journal id of one worker within a sharded experiment ("<id>.shard<k>of<N>"
/// — distinct per (k, N) so partial shard sets resume correctly).
std::string shard_entry_id(const std::string& id, int index, int count);

/// Runs one experiment attempt-loop (no journal interaction): spawns the
/// child, enforces the timeout, retries up to the attempt budget. The
/// returned entry's report path is filled even on failure.
JournalEntry run_experiment(const ExperimentSpec& spec,
                            const RunOptions& opt);

/// Sharded variant (opt.shards > 1 on a shardable spec): spawns
/// opt.shards concurrent `--shard k/N` workers (resuming completed ones
/// from `completed` worker journal entries + existing tapes, appending
/// one journal line per worker to `journal`), then one `--shard merge/N`
/// child that writes the final report. The returned spec-level entry is
/// shaped exactly like run_experiment's.
JournalEntry run_experiment_sharded(
    const ExperimentSpec& spec, const RunOptions& opt, const Journal& journal,
    const std::map<std::string, JournalEntry>& completed);

/// Runs `specs` in order under the options above, appending a journal
/// line per completed experiment. Creates out_dir (and reports/ logs/
/// subdirectories) if needed.
SuiteRun run_suite(const std::vector<ExperimentSpec>& specs,
                   const RunOptions& opt);

/// mkdir -p equivalent; true when the directory exists afterwards.
bool ensure_directory(const std::string& path);

}  // namespace ntv::harness
