// Minimal JSON value + recursive-descent parser.
//
// The reproduction harness must read back the JSON run reports the bench
// binaries emit (obs::JsonWriter only writes). This is the counterpart
// parser: a small immutable DOM covering exactly the JSON the repo
// produces — objects, arrays, strings, doubles, bools, null — with no
// external dependency. It is not a general-purpose library: no comments,
// no trailing commas, no \u surrogate-pair decoding beyond passing the
// escaped bytes through.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ntv::harness {

/// Immutable parsed JSON value. Object member order is not preserved
/// (members live in a std::map); every consumer in the harness keys by
/// name, so ordering does not matter.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  ///< null

  /// Parses one complete JSON document. Returns std::nullopt and fills
  /// `*error` (when non-null) with a "byte N: reason" message on any
  /// syntax error or trailing garbage.
  static std::optional<JsonValue> parse(std::string_view text,
                                        std::string* error = nullptr);

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::kNull; }
  bool is_object() const noexcept { return kind_ == Kind::kObject; }
  bool is_array() const noexcept { return kind_ == Kind::kArray; }
  bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  bool is_string() const noexcept { return kind_ == Kind::kString; }
  bool is_bool() const noexcept { return kind_ == Kind::kBool; }

  /// Value accessors; reading the wrong kind returns a zero value rather
  /// than throwing (missing/mistyped report fields are ordinary data
  /// errors the harness reports per-experiment, not logic errors).
  double as_number(double fallback = 0.0) const noexcept {
    return kind_ == Kind::kNumber ? number_ : fallback;
  }
  bool as_bool(bool fallback = false) const noexcept {
    return kind_ == Kind::kBool ? bool_ : fallback;
  }
  const std::string& as_string() const noexcept { return string_; }
  const std::vector<JsonValue>& items() const noexcept { return array_; }
  const std::map<std::string, JsonValue>& members() const noexcept {
    return object_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Dotted-path lookup ("results.values.chain_pct_90nm_1.00V"): tries
  /// the longest joined prefix first at each level, so leaf keys that
  /// themselves contain dots resolve (same rule as check_report.py).
  const JsonValue* find_path(std::string_view dotted) const;

  // Construction helpers (used by the parser, tests and the manifest
  // loader).
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string v);
  static JsonValue make_bool(bool v);
  static JsonValue make_object(std::map<std::string, JsonValue> members);
  static JsonValue make_array(std::vector<JsonValue> items);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Reads a whole file; std::nullopt on I/O failure.
std::optional<std::string> read_text_file(const std::string& path);

}  // namespace ntv::harness
