// Declarative experiment registry: one spec per paper figure/table.
//
// The reproduction's deliverable is the paper-vs-measured comparison in
// EXPERIMENTS.md. Each ExperimentSpec declares, for one bench binary,
// everything needed to (a) run it under supervision (binary, args,
// timeout, retry budget, reduced smoke budget), (b) pull its reproduced
// numbers out of the --report JSON (checkpoint keys), and (c) classify
// them against the paper (tolerance bands -> a ✔/≈/✘ verdict). The
// registry is the single source of truth: the batch runner executes it,
// the aggregator scores it, and the EXPERIMENTS.md generator renders it —
// the committed doc is a build artifact of these specs plus run reports
// (docs/REPRODUCTION.md).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ntv::harness {

/// Paper-vs-measured classification of a checkpoint or an experiment.
/// Ordered worst-to-best so "worst over checkpoints" is std::min.
enum class Verdict {
  kFail = 0,    ///< ✘ — outside even the loose band; deviation, discussed.
  kApprox = 1,  ///< ≈ — right shape, magnitude off (inside the loose band).
  kPass = 2,    ///< ✔ — inside the strict band.
};

/// Rendered glyph for a verdict (✔ / ≈ / ✘).
std::string_view verdict_glyph(Verdict v) noexcept;

/// Manifest-stable name for a verdict ("pass" / "approx" / "fail").
std::string_view verdict_name(Verdict v) noexcept;

/// One machine-checked number of an experiment: where to find it in the
/// bench report (`results.values.<key>`), what the paper says, and the
/// tolerance bands that classify the measured value.
///
/// Band semantics (docs/REPRODUCTION.md): value in [lo, hi] -> ✔; else in
/// [approx_lo, approx_hi] -> ≈; else ✘. A missing key is always ✘ (a
/// checkpoint that cannot be read is a broken reproduction, not a pass).
/// Bands are chosen wide enough to absorb Monte Carlo noise at the
/// default budget; `smoke` marks the checkpoints that stay inside their
/// bands at the reduced CI budget too and are therefore gated on every
/// pull request.
struct Checkpoint {
  std::string key;    ///< Key under results.values in the bench report.
  std::string label;  ///< Row label in the rendered table.
  std::string paper;  ///< Paper's value as prose, e.g. "35.49 %" or "~18 %".
  double lo = 0.0;    ///< ✔ band, inclusive.
  double hi = 0.0;
  double approx_lo = 0.0;  ///< ≈ band, inclusive; must contain [lo, hi].
  double approx_hi = 0.0;
  std::string unit;   ///< Unit suffix rendered after the measured value.
  int precision = 2;  ///< Decimals when rendering the measured value.
  bool smoke = false; ///< Gated in reduced-budget (--smoke) runs too.
};

/// Builder shorthand: a checkpoint whose ≈ band widens the ✔ band by the
/// given factor on each side (relative to the band's span).
Checkpoint checkpoint(std::string key, std::string label, std::string paper,
                      double lo, double hi, std::string unit = "",
                      int precision = 2, bool smoke = false);

/// One figure/table/extension experiment of the reproduction suite.
struct ExperimentSpec {
  std::string id;      ///< Stable short name, e.g. "fig1", "table2".
  std::string title;   ///< Section heading in EXPERIMENTS.md.
  std::string binary;  ///< Bench executable under the --bin-dir.
  /// Extra argv after `--artifact_only --report <path>` for full runs.
  std::vector<std::string> args;
  /// Extra argv appended in --smoke runs (typically a reduced --samples
  /// budget); empty means the full-run arguments are already cheap.
  std::vector<std::string> smoke_args;
  /// Member of the reduced CI suite (repro-smoke job)?
  bool in_smoke_set = false;
  /// Safe to split across `--shards N` worker processes: the experiment
  /// is a fixed-grid Monte Carlo sweep whose every cell is probed
  /// identically by workers and merger (docs/SHARDING.md). Adaptive
  /// searches (e.g. voltage-margin root finds) and analytic twins stay
  /// unsharded: a sharded run of a non-shardable spec would still be
  /// CORRECT (the merger recomputes tape misses locally) but wasteful.
  bool shardable = false;
  int timeout_sec = 300;  ///< Watchdog: the subprocess is killed after this.
  int max_attempts = 2;   ///< Bounded retries (crash/timeout -> rerun).
  std::vector<Checkpoint> checkpoints;
  /// Markdown prose rendered after the checkpoint table: the shape
  /// discussion, deviations, and reconstruction notes. May be empty.
  std::string notes;
};

/// The full experiment suite, in EXPERIMENTS.md render order. Specs are
/// constructed once on first use and never mutated.
const std::vector<ExperimentSpec>& registry();

/// Lookup by id; nullptr when unknown.
const ExperimentSpec* find_spec(std::string_view id);

}  // namespace ntv::harness
