// JSONL checkpoint journal for the batch runner.
//
// A full reproduction sweep is minutes of Monte Carlo across 26 bench
// binaries; an interrupted or crashed run must resume from the last
// completed experiment instead of restarting. The journal is the usual
// crash-safe shape for that: one self-contained JSON object per line,
// appended and flushed after every experiment, so a kill -9 at any point
// loses at most the in-flight experiment. On resume the runner replays
// the file (last entry per experiment wins) and skips every experiment
// whose latest entry is "ok" and whose report file still exists.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

namespace ntv::harness {

/// Terminal states an experiment attempt can reach.
enum class RunStatus {
  kOk,       ///< Exited 0 and produced its report.
  kFailed,   ///< Nonzero exit, signal, or unreadable/missing report.
  kTimeout,  ///< Killed by the per-experiment watchdog.
};

std::string_view run_status_name(RunStatus s) noexcept;
std::optional<RunStatus> parse_run_status(std::string_view name) noexcept;

/// One journal line: the outcome of one experiment's (final) attempt.
struct JournalEntry {
  std::string id;                ///< ExperimentSpec::id.
  RunStatus status = RunStatus::kFailed;
  int attempts = 0;              ///< Attempts consumed (1 = first try).
  int exit_code = 0;             ///< Child exit code (or -signal).
  std::int64_t elapsed_ms = 0;   ///< Wall clock of the final attempt.
  std::string report;            ///< Path of the bench --report JSON.
  bool smoke = false;            ///< Run at the reduced smoke budget?

  /// Serializes as one JSONL line (no trailing newline).
  std::string to_json_line() const;

  /// Parses one journal line; std::nullopt on malformed input (a torn
  /// final line after a crash is expected and simply ignored).
  static std::optional<JournalEntry> from_json_line(std::string_view line);
};

/// Append-only JSONL journal at a fixed path.
class Journal {
 public:
  explicit Journal(std::string path) : path_(std::move(path)) {}

  const std::string& path() const noexcept { return path_; }

  /// Appends one entry and flushes. Returns false on I/O failure.
  bool append(const JournalEntry& entry) const;

  /// Replays the journal: the LAST entry per experiment id wins (a
  /// retried experiment appears multiple times). Missing file -> empty
  /// map; torn/malformed lines are skipped.
  std::map<std::string, JournalEntry> load() const;

 private:
  std::string path_;
};

}  // namespace ntv::harness
