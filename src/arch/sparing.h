// Spare-placement schemes: global vs. local sparing (Appendix D).
//
// Local sparing assigns spares to fixed clusters (Synctium's 1-per-4);
// it fails when a cluster accumulates more faults than it has spares.
// Global sparing (enabled by the XRAM crossbar) lets any spare replace
// any faulty lane, so it only fails when the total fault count exceeds
// the spare count. The Monte Carlo helpers quantify that difference.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "arch/simd_timing.h"
#include "stats/rng.h"

namespace ntv::arch {

/// A spare-placement policy over a set of physical lanes.
class SparingScheme {
 public:
  virtual ~SparingScheme() = default;

  /// Total physical lanes the scheme manages for `logical_width` lanes.
  virtual int physical_lanes(int logical_width) const = 0;

  /// True when the fault pattern is repairable (all logical lanes can be
  /// served by healthy physical lanes under the placement constraints).
  /// faulty.size() must equal physical_lanes(logical_width).
  virtual bool covers(std::span<const std::uint8_t> faulty,
                      int logical_width) const = 0;

  /// Exact coverage probability under the independent-Bernoulli fault
  /// model (each physical lane faulty with probability `fault_prob`) —
  /// the closed-form twin of mc_coverage, used by the analytic backend.
  /// Takes a plain probability so callers decide where it comes from
  /// (a measured defect rate, or a delay-fault tail from the SSTA law).
  virtual double analytic_coverage(int logical_width,
                                   double fault_prob) const = 0;

  virtual std::string name() const = 0;
};

/// All spares in one shared pool; any spare can replace any lane.
class GlobalSparing final : public SparingScheme {
 public:
  explicit GlobalSparing(int spares);
  int physical_lanes(int logical_width) const override;
  bool covers(std::span<const std::uint8_t> faulty, int logical_width) const override;
  double analytic_coverage(int logical_width, double fault_prob) const override;
  std::string name() const override;
  int spares() const noexcept { return spares_; }

 private:
  int spares_;
};

/// Lanes grouped into clusters of `cluster_size`, each with
/// `spares_per_cluster` dedicated spares (physical layout: cluster 0's
/// lanes and spares first, then cluster 1, ...).
class LocalSparing final : public SparingScheme {
 public:
  LocalSparing(int cluster_size, int spares_per_cluster);
  int physical_lanes(int logical_width) const override;
  bool covers(std::span<const std::uint8_t> faulty, int logical_width) const override;
  double analytic_coverage(int logical_width, double fault_prob) const override;
  std::string name() const override;
  int cluster_size() const noexcept { return cluster_size_; }
  int spares_per_cluster() const noexcept { return spares_per_cluster_; }

 private:
  int cluster_size_;
  int spares_per_cluster_;
};

/// Hybrid placement: each cluster keeps `spares_per_cluster` local spares
/// (cheap routing) and a shared pool of `global_spares` (placed after all
/// clusters) absorbs whatever the local spares cannot. Covers a fault
/// pattern iff the summed per-cluster overflow fits in the pool.
class HybridSparing final : public SparingScheme {
 public:
  HybridSparing(int cluster_size, int spares_per_cluster, int global_spares);
  int physical_lanes(int logical_width) const override;
  bool covers(std::span<const std::uint8_t> faulty,
              int logical_width) const override;
  double analytic_coverage(int logical_width, double fault_prob) const override;
  std::string name() const override;

 private:
  int cluster_size_;
  int spares_per_cluster_;
  int global_spares_;
};

/// Coverage probability when each physical lane fails independently with
/// probability `fault_prob` (Bernoulli fault injection).
double mc_coverage(const SparingScheme& scheme, int logical_width,
                   double fault_prob, std::size_t n_trials,
                   std::uint64_t seed = 0xC0FFEE);

/// Coverage probability under the *delay* fault model: a physical lane is
/// faulty when its sampled delay exceeds `t_clk`. Lane delays within one
/// chip share the die systematic, so faults arrive in correlated bursts —
/// exactly the case where local sparing loses (Appendix D).
double mc_coverage_delay(const SparingScheme& scheme,
                         const ChipDelaySampler& sampler, int logical_width,
                         double t_clk, std::size_t n_trials,
                         std::uint64_t seed = 0xC0FFEE);

/// Generic variant: `sample_lanes` fills one chip's physical-lane delays
/// (in physical order) per call. Use with SpatialChipSampler or any
/// custom correlation structure.
using LaneSampler =
    std::function<void(stats::Xoshiro256pp&, std::span<double>)>;
double mc_coverage_delay_fn(const SparingScheme& scheme,
                            const LaneSampler& sample_lanes,
                            int logical_width, double t_clk,
                            std::size_t n_trials,
                            std::uint64_t seed = 0xC0FFEE);

/// Coverage estimate with convergence diagnostics (the planned variant
/// below fills them from the likelihood-ratio weights).
struct CoverageEstimate {
  double coverage = 0.0;      ///< (Weighted) covered fraction.
  double ess = 0.0;           ///< Kish effective sample size.
  double ci_halfwidth = 0.0;  ///< 95 % CI half-width of the coverage.
};

/// Variance-reduced mc_coverage_delay: lane uniforms come from `plan`
/// (importance tilting toward slow lanes concentrates trials on the
/// fault-rich region, where un-covered patterns live). The naive plan
/// computes exactly mc_coverage_delay's estimate.
CoverageEstimate mc_coverage_delay_planned(
    const SparingScheme& scheme, const ChipDelaySampler& sampler,
    int logical_width, double t_clk, std::size_t n_trials,
    const stats::SamplingPlan& plan, std::uint64_t seed = 0xC0FFEE);

}  // namespace ntv::arch
