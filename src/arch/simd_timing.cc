#include "arch/simd_timing.h"

#include <algorithm>
#include <functional>
#include <optional>
#include <stdexcept>

#include "device/dist_cache.h"
#include "exec/thread_pool.h"
#include "stats/percentile.h"

namespace ntv::arch {

ChipDelaySampler::ChipDelaySampler(const device::VariationModel& model,
                                   double vdd, const TimingConfig& config,
                                   const device::DistributionOptions& dist_opt)
    : model_(&model),
      vdd_(vdd),
      config_(config),
      chain_(config.correlation == DieCorrelation::kIndependentPaths
                 ? device::cached_total_chain_distribution(
                       model, vdd, config.chain_stages, dist_opt)
                 : device::cached_chain_distribution(
                       model, vdd, config.chain_stages, dist_opt)),
      fo4_unit_(model.gate_model().fo4_delay(vdd)) {
  if (config.simd_width < 1 || config.paths_per_lane < 1 ||
      config.chain_stages < 1)
    throw std::invalid_argument("ChipDelaySampler: invalid TimingConfig");
}

namespace {

/// Per-thread uniform-draw scratch for the batched sampling kernels. One
/// buffer per worker, grown once to the widest row ever sampled — no
/// per-sample (or per-row, after warmup) heap allocation in the MC inner
/// loops.
std::vector<double>& uniform_scratch(std::size_t n) {
  thread_local std::vector<double> buf;
  if (buf.size() < n) buf.resize(n);
  return buf;
}

}  // namespace

void ChipDelaySampler::sample_lanes(stats::Xoshiro256pp& rng,
                                    std::span<double> lanes) const {
  double scale = 1.0;
  if (config_.correlation == DieCorrelation::kSharedDie) {
    const device::DieState die = model_->sample_die(rng);
    scale = model_->die_scale(vdd_, die);
  }
  // Draw every lane uniform up front (same RNG order as the old per-lane
  // round trip), then run one batched inverse-CDF pass over the row.
  std::vector<double>& u = uniform_scratch(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) u[i] = rng.uniform();
  chain_->max_quantile_batch(std::span<const double>(u.data(), lanes.size()),
                             config_.paths_per_lane, lanes);
  if (scale != 1.0) {
    for (double& lane : lanes) lane = scale * lane;
  }
}

double ChipDelaySampler::sample_lanes_planned(
    stats::Xoshiro256pp& rng, const stats::SamplingPlan& plan,
    std::size_t row, std::size_t n_rows, std::span<double> lanes,
    const stats::ScrambledSobol* qmc) const {
  double scale = 1.0;
  if (config_.correlation == DieCorrelation::kSharedDie) {
    // Die state first, exactly like sample_lanes: the naive plan must
    // consume the RNG stream in the historical order.
    const device::DieState die = model_->sample_die(rng);
    scale = model_->die_scale(vdd_, die);
  }
  std::vector<double>& u = uniform_scratch(lanes.size());
  const double weight = stats::plan_row_uniforms(
      plan, rng, row, n_rows, std::span<double>(u.data(), lanes.size()), qmc);
  chain_->max_quantile_batch(std::span<const double>(u.data(), lanes.size()),
                             config_.paths_per_lane, lanes);
  if (scale != 1.0) {
    for (double& lane : lanes) lane = scale * lane;
  }
  return weight;
}

double ChipDelaySampler::chip_delay_from_lanes(std::span<double> lanes,
                                               int width) {
  if (width < 1 || static_cast<std::size_t>(width) > lanes.size())
    throw std::invalid_argument("chip_delay_from_lanes: bad width");
  // Delay of the fastest `width` lanes == width-th smallest lane delay.
  auto mid = lanes.begin() + (width - 1);
  std::nth_element(lanes.begin(), mid, lanes.end());
  return *mid;
}

double ChipDelaySampler::sample_chip_delay(stats::Xoshiro256pp& rng,
                                           int width) const {
  double scale = 1.0;
  if (config_.correlation == DieCorrelation::kSharedDie) {
    const device::DieState die = model_->sample_die(rng);
    scale = model_->die_scale(vdd_, die);
  }
  const auto n = static_cast<std::size_t>(width);
  std::vector<double>& u = uniform_scratch(2 * n);
  double* q = u.data() + n;  // Quantile outputs share the scratch buffer.
  for (std::size_t i = 0; i < n; ++i) u[i] = rng.uniform();
  chain_->max_quantile_batch(std::span<const double>(u.data(), n),
                             config_.paths_per_lane,
                             std::span<double>(q, n));
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) worst = std::max(worst, q[i]);
  return scale * worst;
}

std::vector<double> ChipDelaySampler::chip_delay_curve(
    std::span<const double> lanes, int width) {
  if (width < 1 || static_cast<std::size_t>(width) > lanes.size())
    throw std::invalid_argument("chip_delay_curve: bad width");
  std::vector<double> curve(lanes.size() - static_cast<std::size_t>(width) +
                            1);
  chip_delay_curve_into(lanes, width, curve);
  return curve;
}

namespace {

/// Replaces the root of a max-heap with `v` in ONE sift-down pass.
/// std::pop_heap + push_heap costs two full log-depth passes per
/// replacement; this is the classic replace-top, and the heap holds the
/// same SET of values either way, so the curve below is unchanged.
void heap_replace_top(double* h, std::size_t n, double v) {
  std::size_t i = 0;
  for (;;) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && h[child] < h[child + 1]) ++child;
    if (h[child] <= v) break;
    h[i] = h[child];
    i = child;
  }
  h[i] = v;
}

}  // namespace

void ChipDelaySampler::chip_delay_curve_into(std::span<const double> lanes,
                                             int width,
                                             std::span<double> out) {
  if (width < 1 || static_cast<std::size_t>(width) > lanes.size())
    throw std::invalid_argument("chip_delay_curve: bad width");
  const std::size_t w = static_cast<std::size_t>(width);
  if (out.size() != lanes.size() - w + 1)
    throw std::invalid_argument("chip_delay_curve_into: bad out size");

  // Max-heap of the `width` smallest lane delays seen so far; its top is
  // the chip delay of the current prefix.
  thread_local std::vector<double> heap;
  heap.assign(lanes.begin(), lanes.begin() + width);
  std::make_heap(heap.begin(), heap.end());

  out[0] = heap.front();
  for (std::size_t i = w; i < lanes.size(); ++i) {
    if (lanes[i] < heap.front()) {
      heap_replace_top(heap.data(), w, lanes[i]);
    }
    out[i - w + 1] = heap.front();
  }
}

double ChipDelaySampler::sample_path_delay(stats::Xoshiro256pp& rng) const {
  if (config_.correlation == DieCorrelation::kSharedDie) {
    const device::DieState die = model_->sample_die(rng);
    return model_->die_scale(vdd_, die) * chain_->quantile(rng.uniform());
  }
  return chain_->quantile(rng.uniform());
}

double ChipMcResult::percentile(double p) const {
  // weighted_percentile delegates to stats::percentile for empty weights,
  // but go straight there to keep the unweighted path's arithmetic
  // obviously the historical one.
  if (weights.empty()) return stats::percentile(delays, p);
  return stats::weighted_percentile(delays, weights, p);
}

double ChipMcResult::ess() const {
  if (weights.empty()) return static_cast<double>(delays.size());
  return stats::effective_sample_size(weights);
}

stats::QuantileCi ChipMcResult::percentile_ci(double p, double z) const {
  return stats::weighted_percentile_ci(delays, weights, p, z);
}

ChipMcResult mc_chip_delays(const ChipDelaySampler& sampler,
                            std::size_t n_chips, int width, int spares,
                            const stats::MonteCarloOptions& opt,
                            const stats::SamplingPlan& plan) {
  const int counts[] = {spares};
  std::vector<ChipMcResult> sweep =
      mc_chip_delay_sweep(sampler, n_chips, width, counts, opt, plan);
  return std::move(sweep.front());
}

std::vector<ChipMcResult> mc_chip_delay_sweep(
    const ChipDelaySampler& sampler, std::size_t n_chips, int width,
    std::span<const int> spare_counts, const stats::MonteCarloOptions& opt,
    const stats::SamplingPlan& plan) {
  if (spare_counts.empty())
    throw std::invalid_argument("mc_chip_delay_sweep: no spare counts");
  int max_spares = 0;
  for (int s : spare_counts) {
    if (s < 0)
      throw std::invalid_argument("mc_chip_delay_sweep: negative spares");
    max_spares = std::max(max_spares, s);
  }

  const std::size_t row_width =
      static_cast<std::size_t>(width) + static_cast<std::size_t>(max_spares);

  // The planned path writes per-row weights from pool workers; rows are
  // disjoint, so a plain vector indexed by row is race-free. Unweighted
  // plans skip the vector entirely, which keeps the default path's
  // closure (and artifacts) byte-identical to the pre-plan code.
  std::vector<double> row_weights;
  std::optional<stats::ScrambledSobol> sobol;
  if (plan.strategy == stats::SamplingStrategy::kQmc) sobol.emplace(opt.seed);
  if (plan.is_weighted()) row_weights.assign(n_chips, 1.0);

  std::function<void(stats::Xoshiro256pp&, std::size_t, double*)> fill;
  if (plan.is_naive()) {
    fill = [&sampler, row_width](stats::Xoshiro256pp& rng, std::size_t,
                                 double* out) {
      sampler.sample_lanes(rng, std::span<double>(out, row_width));
    };
  } else {
    const stats::ScrambledSobol* qmc = sobol ? &*sobol : nullptr;
    fill = [&sampler, &plan, &row_weights, qmc, row_width, n_chips](
               stats::Xoshiro256pp& rng, std::size_t row, double* out) {
      const double w = sampler.sample_lanes_planned(
          rng, plan, row, n_chips, std::span<double>(out, row_width), qmc);
      if (!row_weights.empty()) row_weights[row] = w;
    };
  }
  const std::vector<double> rows =
      stats::monte_carlo_rows(n_chips, row_width, fill, opt);

  std::vector<ChipMcResult> results(spare_counts.size());
  for (auto& r : results) {
    r.delays.resize(n_chips);
    r.weights = row_weights;  // Shared by every spare count (same chips).
  }

  // Per-chip selection is independent (each chip writes its own slots of
  // every result vector), so it fans out on the shared pool too.
  exec::ThreadPool::global().parallel_for(
      0, n_chips,
      [&](std::size_t chip) {
        thread_local std::vector<double> scratch;
        scratch.resize(row_width);
        const double* row = rows.data() + chip * row_width;
        for (std::size_t k = 0; k < spare_counts.size(); ++k) {
          const std::size_t n_lanes =
              static_cast<std::size_t>(width) +
              static_cast<std::size_t>(spare_counts[k]);
          std::copy(row, row + n_lanes, scratch.begin());
          results[k].delays[chip] = ChipDelaySampler::chip_delay_from_lanes(
              std::span<double>(scratch.data(), n_lanes), width);
        }
      },
      /*grain=*/256);
  return results;
}

}  // namespace ntv::arch
