#include "arch/simd_timing.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <stdexcept>

#include "device/dist_cache.h"
#include "exec/thread_pool.h"
#include "simd/simd.h"
#include "stats/percentile.h"
#include "stats/shard.h"

namespace ntv::arch {

ChipDelaySampler::ChipDelaySampler(const device::VariationModel& model,
                                   double vdd, const TimingConfig& config,
                                   const device::DistributionOptions& dist_opt)
    : model_(&model),
      vdd_(vdd),
      config_(config),
      chain_(config.correlation == DieCorrelation::kIndependentPaths
                 ? device::cached_total_chain_distribution(
                       model, vdd, config.chain_stages, dist_opt)
                 : device::cached_chain_distribution(
                       model, vdd, config.chain_stages, dist_opt)),
      fo4_unit_(model.gate_model().fo4_delay(vdd)) {
  if (config.simd_width < 1 || config.paths_per_lane < 1 ||
      config.chain_stages < 1)
    throw std::invalid_argument("ChipDelaySampler: invalid TimingConfig");
  lane_ = device::cached_lane_distribution(
      model, vdd, config.chain_stages, config.paths_per_lane,
      config.correlation == DieCorrelation::kIndependentPaths, dist_opt);
}

namespace {

/// Per-thread uniform-draw scratch for the batched sampling kernels. One
/// buffer per worker, grown once to the widest row ever sampled — no
/// per-sample (or per-row, after warmup) heap allocation in the MC inner
/// loops.
std::vector<double>& uniform_scratch(std::size_t n) {
  thread_local std::vector<double> buf;
  if (buf.size() < n) buf.resize(n);
  return buf;
}

}  // namespace

void ChipDelaySampler::sample_lanes(stats::Xoshiro256pp& rng,
                                    std::span<double> lanes) const {
  double scale = 1.0;
  if (config_.correlation == DieCorrelation::kSharedDie) {
    const device::DieState die = model_->sample_die(rng);
    scale = model_->die_scale(vdd_, die);
  }
  // Draw every lane uniform up front (same RNG order as the old per-lane
  // round trip), then ONE inverse-CDF pass over the row from the
  // precomputed lane distribution (F^paths_per_lane).
  std::vector<double>& u = uniform_scratch(lanes.size());
  for (std::size_t i = 0; i < lanes.size(); ++i) u[i] = rng.uniform();
  lane_->quantile_batch(std::span<const double>(u.data(), lanes.size()),
                        lanes);
  if (scale != 1.0) {
    simd::kernels().scale(lanes.data(), lanes.size(), scale);
  }
}

double ChipDelaySampler::sample_lanes_planned(
    stats::Xoshiro256pp& rng, const stats::SamplingPlan& plan,
    std::size_t row, std::size_t n_rows, std::span<double> lanes,
    const stats::ScrambledSobol* qmc) const {
  double scale = 1.0;
  if (config_.correlation == DieCorrelation::kSharedDie) {
    // Die state first, exactly like sample_lanes: the naive plan must
    // consume the RNG stream in the historical order.
    const device::DieState die = model_->sample_die(rng);
    scale = model_->die_scale(vdd_, die);
  }
  std::vector<double>& u = uniform_scratch(lanes.size());
  const double weight = stats::plan_row_uniforms(
      plan, rng, row, n_rows, std::span<double>(u.data(), lanes.size()), qmc);
  lane_->quantile_batch(std::span<const double>(u.data(), lanes.size()),
                        lanes);
  if (scale != 1.0) {
    simd::kernels().scale(lanes.data(), lanes.size(), scale);
  }
  return weight;
}

void ChipDelaySampler::sample_lane_block(
    stats::Xoshiro256ppX4& rng, const stats::SamplingPlan& plan,
    std::size_t lo, std::size_t hi, std::size_t n_rows,
    std::size_t row_width, double* out, double* weights,
    const stats::ScrambledSobol* qmc) const {
  if (config_.correlation != DieCorrelation::kIndependentPaths)
    throw std::invalid_argument(
        "sample_lane_block: kSharedDie draws per-row die states; use the "
        "row-at-a-time samplers");
  thread_local std::vector<double> u;
  stats::plan_block_uniforms(plan, rng, lo, hi, n_rows, row_width, u,
                             weights, qmc);
  const std::size_t total = (hi - lo) * row_width;
  lane_->quantile_batch(std::span<const double>(u.data(), total),
                        std::span<double>(out, total));
}

double ChipDelaySampler::chip_delay_from_lanes(std::span<double> lanes,
                                               int width) {
  if (width < 1 || static_cast<std::size_t>(width) > lanes.size())
    throw std::invalid_argument("chip_delay_from_lanes: bad width");
  // Delay of the fastest `width` lanes == width-th smallest lane delay.
  auto mid = lanes.begin() + (width - 1);
  std::nth_element(lanes.begin(), mid, lanes.end());
  return *mid;
}

double ChipDelaySampler::sample_chip_delay(stats::Xoshiro256pp& rng,
                                           int width) const {
  double scale = 1.0;
  if (config_.correlation == DieCorrelation::kSharedDie) {
    const device::DieState die = model_->sample_die(rng);
    scale = model_->die_scale(vdd_, die);
  }
  const auto n = static_cast<std::size_t>(width);
  std::vector<double>& u = uniform_scratch(2 * n);
  double* q = u.data() + n;  // Quantile outputs share the scratch buffer.
  for (std::size_t i = 0; i < n; ++i) u[i] = rng.uniform();
  lane_->quantile_batch(std::span<const double>(u.data(), n),
                        std::span<double>(q, n));
  // Lane delays are positive, so the kernel's -inf-seeded max equals the
  // historical 0-seeded scan.
  return scale * simd::kernels().max_reduce(q, n);
}

std::vector<double> ChipDelaySampler::chip_delay_curve(
    std::span<const double> lanes, int width) {
  if (width < 1 || static_cast<std::size_t>(width) > lanes.size())
    throw std::invalid_argument("chip_delay_curve: bad width");
  std::vector<double> curve(lanes.size() - static_cast<std::size_t>(width) +
                            1);
  chip_delay_curve_into(lanes, width, curve);
  return curve;
}

namespace {

/// Winner tree (tournament max-tree) over the `width` smallest lane
/// delays seen so far. Node 1 is the root, leaves live at [p, 2p) for
/// p = bit_ceil(width), and every internal node caches the max of its
/// subtree plus the leaf that holds it. Replacing the current maximum
/// rewrites exactly one leaf-to-root path with branch-free selects.
///
/// On near-threshold rows most candidate lanes DO beat the running top
/// (the hit probability is width/i, i.e. 0.5..1 for a one-spare-per-lane
/// row), so replace cost dominates; the fixed, data-independent update
/// path here beats a binary heap's data-dependent sift-down. The tree
/// holds the same multiset as the heap it replaced — remove one copy of
/// the max, insert the new lane — so the emitted curve is bit-identical.
struct WinnerTree {
  std::vector<double> val;
  std::vector<std::uint32_t> leaf;

  void build(const double* lanes, std::size_t w) {
    const std::size_t p = std::bit_ceil(w);
    val.assign(2 * p, -std::numeric_limits<double>::infinity());
    leaf.resize(2 * p);
    for (std::size_t j = 0; j < w; ++j) val[p + j] = lanes[j];
    for (std::size_t j = 0; j < p; ++j)
      leaf[p + j] = static_cast<std::uint32_t>(p + j);
    for (std::size_t k = p; k-- > 1;) {
      const std::size_t c = 2 * k + (val[2 * k + 1] > val[2 * k] ? 1 : 0);
      val[k] = val[c];
      leaf[k] = leaf[c];
    }
  }

  double top() const { return val[1]; }

  void replace_top(double v) {
    std::size_t node = leaf[1];
    val[node] = v;
    while (node > 1) {
      node >>= 1;
      const std::size_t c =
          2 * node + (val[2 * node + 1] > val[2 * node] ? 1 : 0);
      val[node] = val[c];
      leaf[node] = leaf[c];
    }
  }
};

}  // namespace

void ChipDelaySampler::chip_delay_curve_into(std::span<const double> lanes,
                                             int width,
                                             std::span<double> out) {
  if (width < 1 || static_cast<std::size_t>(width) > lanes.size())
    throw std::invalid_argument("chip_delay_curve: bad width");
  const std::size_t w = static_cast<std::size_t>(width);
  if (out.size() != lanes.size() - w + 1)
    throw std::invalid_argument("chip_delay_curve_into: bad out size");

  // The `width` smallest lane delays seen so far; the tree top is the
  // chip delay of the current prefix.
  thread_local WinnerTree tree;
  tree.build(lanes.data(), w);

  double top = tree.top();
  out[0] = top;
  for (std::size_t i = w; i < lanes.size(); ++i) {
    if (lanes[i] < top) {
      tree.replace_top(lanes[i]);
      top = tree.top();
    }
    out[i - w + 1] = top;
  }
}

void ChipDelaySampler::chip_delay_curves_block(const double* rows,
                                               std::size_t n_chips,
                                               std::size_t row_width,
                                               int width, double* out,
                                               std::size_t out_stride) {
  if (width < 1 || static_cast<std::size_t>(width) > row_width)
    throw std::invalid_argument("chip_delay_curves_block: bad width");
  const std::size_t w = static_cast<std::size_t>(width);
  const std::size_t n_alpha = row_width - w + 1;
  if (out_stride < n_alpha)
    throw std::invalid_argument("chip_delay_curves_block: bad out stride");

  // Four chips in flight: each replace is a serial store-to-load chain
  // up one tree path, so independent chains are interleaved to keep the
  // core busy (~2x over one-at-a-time). The unconditional min-replace
  // swaps the max for itself when the lane loses — the multiset (and
  // hence the curve) is unchanged, and all four trees do the same
  // branch-free work per lane index.
  thread_local WinnerTree trees[4];
  std::size_t c = 0;
  for (; c + 4 <= n_chips; c += 4) {
    const double* lanes[4];
    double* curve[4];
    double top[4];
    for (int t = 0; t < 4; ++t) {
      lanes[t] = rows + (c + static_cast<std::size_t>(t)) * row_width;
      curve[t] = out + (c + static_cast<std::size_t>(t)) * out_stride;
      trees[t].build(lanes[t], w);
      top[t] = trees[t].top();
      curve[t][0] = top[t];
    }
    for (std::size_t i = w; i < row_width; ++i) {
      const std::size_t o = i - w + 1;
      for (int t = 0; t < 4; ++t) {
        trees[t].replace_top(std::min(lanes[t][i], top[t]));
        top[t] = trees[t].top();
        curve[t][o] = top[t];
      }
    }
  }
  for (; c < n_chips; ++c) {
    chip_delay_curve_into(
        std::span<const double>(rows + c * row_width, row_width), width,
        std::span<double>(out + c * out_stride, n_alpha));
  }
}

double ChipDelaySampler::sample_path_delay(stats::Xoshiro256pp& rng) const {
  if (config_.correlation == DieCorrelation::kSharedDie) {
    const device::DieState die = model_->sample_die(rng);
    return model_->die_scale(vdd_, die) * chain_->quantile(rng.uniform());
  }
  return chain_->quantile(rng.uniform());
}

double ChipMcResult::percentile(double p) const {
  // weighted_percentile delegates to stats::percentile for empty weights,
  // but go straight there to keep the unweighted path's arithmetic
  // obviously the historical one.
  if (weights.empty()) return stats::percentile(delays, p);
  return stats::weighted_percentile(delays, weights, p);
}

double ChipMcResult::ess() const {
  if (weights.empty()) return static_cast<double>(delays.size());
  return stats::effective_sample_size(weights);
}

stats::QuantileCi ChipMcResult::percentile_ci(double p, double z) const {
  return stats::weighted_percentile_ci(delays, weights, p, z);
}

ChipMcResult mc_chip_delays(const ChipDelaySampler& sampler,
                            std::size_t n_chips, int width, int spares,
                            const stats::MonteCarloOptions& opt,
                            const stats::SamplingPlan& plan) {
  const int counts[] = {spares};
  std::vector<ChipMcResult> sweep =
      mc_chip_delay_sweep(sampler, n_chips, width, counts, opt, plan);
  return std::move(sweep.front());
}

std::vector<ChipMcResult> mc_chip_delay_sweep(
    const ChipDelaySampler& sampler, std::size_t n_chips, int width,
    std::span<const int> spare_counts, const stats::MonteCarloOptions& opt,
    const stats::SamplingPlan& plan) {
  if (spare_counts.empty())
    throw std::invalid_argument("mc_chip_delay_sweep: no spare counts");
  int max_spares = 0;
  for (int s : spare_counts) {
    if (s < 0)
      throw std::invalid_argument("mc_chip_delay_sweep: negative spares");
    max_spares = std::max(max_spares, s);
  }

  const std::size_t row_width =
      static_cast<std::size_t>(width) + static_cast<std::size_t>(max_spares);

  // The planned path writes per-row weights from pool workers; rows are
  // disjoint, so a plain vector indexed by row is race-free. Unweighted
  // plans skip the vector entirely, which keeps the default path's
  // closure (and artifacts) byte-identical to the pre-plan code.
  std::vector<double> row_weights;
  std::optional<stats::ScrambledSobol> sobol;
  if (plan.strategy == stats::SamplingStrategy::kQmc) sobol.emplace(opt.seed);
  if (plan.is_weighted()) row_weights.assign(n_chips, 1.0);

  // Uninitialized on purpose (monte_carlo_blocks_into's buffer contract):
  // every row is written unsharded, and a shard worker neither fills nor
  // selects from the rows it does not own. Value-initializing would
  // page-fault the whole row store in every worker (stats/shard.h).
  std::unique_ptr<double[]> rows(new double[n_chips * row_width]);
  const stats::ScrambledSobol* qmc = sobol ? &*sobol : nullptr;
  if (sampler.config().correlation == DieCorrelation::kIndependentPaths) {
    // SoA block path: per-block four-lane substreams feed one flat
    // quantile pass per block through the SIMD kernels. Block b's draws
    // are a function of (seed, b) alone, so results are independent of
    // worker count and dispatch backend (the kernels are byte-identical
    // across backends by contract).
    const std::uint64_t seed = opt.seed;
    double* weights = row_weights.empty() ? nullptr : row_weights.data();
    stats::monte_carlo_blocks_into(
        rows.get(), n_chips, row_width,
        [&sampler, &plan, weights, qmc, row_width, n_chips, seed](
            stats::Xoshiro256pp&, std::size_t lo, std::size_t hi,
            double* out) {
          stats::Xoshiro256ppX4 rng4 =
              stats::substream4(seed, lo / stats::kMonteCarloBlock);
          sampler.sample_lane_block(
              rng4, plan, lo, hi, n_chips, row_width, out,
              weights == nullptr ? nullptr : weights + lo, qmc);
        },
        opt);
  } else {
    // kSharedDie draws a per-row die state from the scalar substream and
    // keeps the historical row-at-a-time path.
    std::function<void(stats::Xoshiro256pp&, std::size_t, double*)> fill;
    if (plan.is_naive()) {
      fill = [&sampler, row_width](stats::Xoshiro256pp& rng, std::size_t,
                                   double* out) {
        sampler.sample_lanes(rng, std::span<double>(out, row_width));
      };
    } else {
      fill = [&sampler, &plan, &row_weights, qmc, row_width, n_chips](
                 stats::Xoshiro256pp& rng, std::size_t row, double* out) {
        const double w = sampler.sample_lanes_planned(
            rng, plan, row, n_chips, std::span<double>(out, row_width), qmc);
        if (!row_weights.empty()) row_weights[row] = w;
      };
    }
    stats::monte_carlo_rows_into(rows.get(), n_chips, row_width, fill, opt);
  }

  std::vector<ChipMcResult> results(spare_counts.size());
  for (auto& r : results) {
    r.delays.resize(n_chips);
    r.weights = row_weights;  // Shared by every spare count (same chips).
  }

  // Per-chip selection is independent (each chip writes its own slots of
  // every result vector), so it fans out on the shared pool too.
  exec::ThreadPool::global().parallel_for(
      0, n_chips,
      [&](std::size_t chip) {
        // A shard worker selects only from rows it filled; unowned
        // result slots keep their resize() zeros, exactly as when the
        // fill itself left them zero (they are never read either way).
        if (!stats::shard_owns_block(chip / stats::kMonteCarloBlock)) {
          return;
        }
        thread_local std::vector<double> scratch;
        scratch.resize(row_width);
        const double* row = rows.get() + chip * row_width;
        for (std::size_t k = 0; k < spare_counts.size(); ++k) {
          const std::size_t n_lanes =
              static_cast<std::size_t>(width) +
              static_cast<std::size_t>(spare_counts[k]);
          std::copy(row, row + n_lanes, scratch.begin());
          results[k].delays[chip] = ChipDelaySampler::chip_delay_from_lanes(
              std::span<double>(scratch.data(), n_lanes), width);
        }
      },
      /*grain=*/256);
  return results;
}

}  // namespace ntv::arch
