#include "arch/sparing.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>
#include <stdexcept>

#include "simd/simd.h"
#include "stats/discrete_distribution.h"
#include "stats/monte_carlo.h"

namespace ntv::arch {

namespace {

// P(Binomial(n, p) = k) via stable survival-function differences.
double binomial_pmf(int k, int n, double p) {
  return stats::binomial_sf(k, n, p) - stats::binomial_sf(k + 1, n, p);
}

void check_fault_prob(double fault_prob) {
  if (!(fault_prob >= 0.0) || fault_prob > 1.0)
    throw std::invalid_argument(
        "analytic_coverage: fault_prob out of range");
}

}  // namespace

GlobalSparing::GlobalSparing(int spares) : spares_(spares) {
  if (spares < 0) throw std::invalid_argument("GlobalSparing: spares < 0");
}

int GlobalSparing::physical_lanes(int logical_width) const {
  return logical_width + spares_;
}

bool GlobalSparing::covers(std::span<const std::uint8_t> faulty,
                           int logical_width) const {
  if (static_cast<int>(faulty.size()) != physical_lanes(logical_width))
    throw std::invalid_argument("GlobalSparing::covers: size mismatch");
  int faults = 0;
  for (bool f : faulty) faults += f ? 1 : 0;
  return faults <= spares_;
}

double GlobalSparing::analytic_coverage(int logical_width,
                                        double fault_prob) const {
  check_fault_prob(fault_prob);
  // Covered iff at most `spares_` of the w + s physical lanes fault.
  return 1.0 - stats::binomial_sf(spares_ + 1, physical_lanes(logical_width),
                                  fault_prob);
}

std::string GlobalSparing::name() const {
  return "global(" + std::to_string(spares_) + " spares)";
}

LocalSparing::LocalSparing(int cluster_size, int spares_per_cluster)
    : cluster_size_(cluster_size), spares_per_cluster_(spares_per_cluster) {
  if (cluster_size < 1 || spares_per_cluster < 0)
    throw std::invalid_argument("LocalSparing: bad parameters");
}

int LocalSparing::physical_lanes(int logical_width) const {
  if (logical_width % cluster_size_ != 0)
    throw std::invalid_argument(
        "LocalSparing: width must be a multiple of cluster size");
  const int clusters = logical_width / cluster_size_;
  return logical_width + clusters * spares_per_cluster_;
}

bool LocalSparing::covers(std::span<const std::uint8_t> faulty,
                          int logical_width) const {
  if (static_cast<int>(faulty.size()) != physical_lanes(logical_width))
    throw std::invalid_argument("LocalSparing::covers: size mismatch");
  const int clusters = logical_width / cluster_size_;
  const int per_cluster = cluster_size_ + spares_per_cluster_;
  for (int c = 0; c < clusters; ++c) {
    int faults = 0;
    for (int i = 0; i < per_cluster; ++i) {
      faults += faulty[static_cast<std::size_t>(c * per_cluster + i)] ? 1 : 0;
    }
    if (faults > spares_per_cluster_) return false;
  }
  return true;
}

double LocalSparing::analytic_coverage(int logical_width,
                                       double fault_prob) const {
  check_fault_prob(fault_prob);
  const int clusters = logical_width / cluster_size_;
  (void)physical_lanes(logical_width);  // Validates divisibility.
  // Clusters fault independently; each must keep its faults within its
  // own spares.
  const double per_cluster_ok =
      1.0 - stats::binomial_sf(spares_per_cluster_ + 1,
                               cluster_size_ + spares_per_cluster_,
                               fault_prob);
  return std::pow(per_cluster_ok, clusters);
}

std::string LocalSparing::name() const {
  return "local(" + std::to_string(spares_per_cluster_) + " per " +
         std::to_string(cluster_size_) + ")";
}

HybridSparing::HybridSparing(int cluster_size, int spares_per_cluster,
                             int global_spares)
    : cluster_size_(cluster_size),
      spares_per_cluster_(spares_per_cluster),
      global_spares_(global_spares) {
  if (cluster_size < 1 || spares_per_cluster < 0 || global_spares < 0)
    throw std::invalid_argument("HybridSparing: bad parameters");
}

int HybridSparing::physical_lanes(int logical_width) const {
  if (logical_width % cluster_size_ != 0)
    throw std::invalid_argument(
        "HybridSparing: width must be a multiple of cluster size");
  const int clusters = logical_width / cluster_size_;
  return logical_width + clusters * spares_per_cluster_ + global_spares_;
}

bool HybridSparing::covers(std::span<const std::uint8_t> faulty,
                           int logical_width) const {
  if (static_cast<int>(faulty.size()) != physical_lanes(logical_width))
    throw std::invalid_argument("HybridSparing::covers: size mismatch");
  const int clusters = logical_width / cluster_size_;
  const int per_cluster = cluster_size_ + spares_per_cluster_;

  // Per-cluster overflow beyond the local spares must fit in the healthy
  // part of the global pool.
  int overflow = 0;
  for (int c = 0; c < clusters; ++c) {
    int faults = 0;
    for (int i = 0; i < per_cluster; ++i) {
      faults += faulty[static_cast<std::size_t>(c * per_cluster + i)] ? 1 : 0;
    }
    overflow += std::max(0, faults - spares_per_cluster_);
  }
  int pool_faults = 0;
  for (int i = 0; i < global_spares_; ++i) {
    pool_faults +=
        faulty[static_cast<std::size_t>(clusters * per_cluster + i)] ? 1 : 0;
  }
  return overflow <= global_spares_ - pool_faults;
}

double HybridSparing::analytic_coverage(int logical_width,
                                        double fault_prob) const {
  check_fault_prob(fault_prob);
  const int clusters = logical_width / cluster_size_;
  (void)physical_lanes(logical_width);  // Validates divisibility.
  const int per_cluster = cluster_size_ + spares_per_cluster_;

  // Covered iff sum of per-cluster overflows plus the pool's own faults
  // fits in the pool: sum_c max(0, F_c - spc) + F_pool <= g. Exact by
  // convolving the cluster-overflow pmf `clusters` times with the pool
  // fault pmf (supports are tiny: <= cluster_size per cluster).
  std::vector<double> overflow_pmf(
      static_cast<std::size_t>(cluster_size_) + 1, 0.0);
  overflow_pmf[0] =
      1.0 - stats::binomial_sf(spares_per_cluster_ + 1, per_cluster,
                               fault_prob);
  for (int j = 1; j <= cluster_size_; ++j) {
    overflow_pmf[static_cast<std::size_t>(j)] =
        binomial_pmf(spares_per_cluster_ + j, per_cluster, fault_prob);
  }

  std::vector<double> total{1.0};
  for (int c = 0; c < clusters; ++c) {
    std::vector<double> next(
        std::min(total.size() + overflow_pmf.size() - 1,
                 static_cast<std::size_t>(global_spares_) + 2),
        0.0);
    for (std::size_t i = 0; i < total.size(); ++i) {
      for (std::size_t j = 0; j < overflow_pmf.size(); ++j) {
        // Everything past the pool budget is a miss whatever follows;
        // lump it into the last (absorbing) bin.
        const std::size_t k = std::min(i + j, next.size() - 1);
        next[k] += total[i] * overflow_pmf[j];
      }
    }
    total.swap(next);
  }

  double covered = 0.0;
  for (int pool_faults = 0; pool_faults <= global_spares_; ++pool_faults) {
    const int budget = global_spares_ - pool_faults;
    double cum = 0.0;
    for (int k = 0; k <= budget && k < static_cast<int>(total.size()); ++k)
      cum += total[static_cast<std::size_t>(k)];
    covered += binomial_pmf(pool_faults, global_spares_, fault_prob) * cum;
  }
  return covered;
}

std::string HybridSparing::name() const {
  return "hybrid(" + std::to_string(spares_per_cluster_) + " per " +
         std::to_string(cluster_size_) + " + " +
         std::to_string(global_spares_) + " pooled)";
}

double mc_coverage(const SparingScheme& scheme, int logical_width,
                   double fault_prob, std::size_t n_trials,
                   std::uint64_t seed) {
  if (fault_prob < 0.0 || fault_prob > 1.0)
    throw std::invalid_argument("mc_coverage: fault_prob out of range");
  const int phys = scheme.physical_lanes(logical_width);
  // Each trial is one Monte Carlo row (1.0 = covered); the runner assigns
  // trials to substreams by block, so the estimate is byte-identical for
  // any worker count.
  const std::vector<double> covered = stats::monte_carlo(
      n_trials,
      [&](stats::Xoshiro256pp& rng) {
        thread_local std::vector<std::uint8_t> faulty;
        faulty.resize(static_cast<std::size_t>(phys));
        for (auto&& f : faulty) f = rng.uniform() < fault_prob;
        return scheme.covers(faulty, logical_width) ? 1.0 : 0.0;
      },
      stats::MonteCarloOptions{.seed = seed});
  return std::reduce(covered.begin(), covered.end()) /
         static_cast<double>(n_trials);
}

double mc_coverage_delay(const SparingScheme& scheme,
                         const ChipDelaySampler& sampler, int logical_width,
                         double t_clk, std::size_t n_trials,
                         std::uint64_t seed) {
  return mc_coverage_delay_fn(
      scheme,
      [&sampler](stats::Xoshiro256pp& rng, std::span<double> lanes) {
        sampler.sample_lanes(rng, lanes);
      },
      logical_width, t_clk, n_trials, seed);
}

double mc_coverage_delay_fn(const SparingScheme& scheme,
                            const LaneSampler& sample_lanes,
                            int logical_width, double t_clk,
                            std::size_t n_trials, std::uint64_t seed) {
  const int phys = scheme.physical_lanes(logical_width);
  const std::vector<double> covered = stats::monte_carlo(
      n_trials,
      [&](stats::Xoshiro256pp& rng) {
        thread_local std::vector<double> lanes;
        thread_local std::vector<std::uint8_t> faulty;
        lanes.resize(static_cast<std::size_t>(phys));
        faulty.resize(static_cast<std::size_t>(phys));
        sample_lanes(rng, lanes);
        simd::kernels().greater_mask(lanes.data(), lanes.size(), t_clk,
                                     faulty.data());
        return scheme.covers(faulty, logical_width) ? 1.0 : 0.0;
      },
      stats::MonteCarloOptions{.seed = seed});
  return std::reduce(covered.begin(), covered.end()) /
         static_cast<double>(n_trials);
}

CoverageEstimate mc_coverage_delay_planned(
    const SparingScheme& scheme, const ChipDelaySampler& sampler,
    int logical_width, double t_clk, std::size_t n_trials,
    const stats::SamplingPlan& plan, std::uint64_t seed) {
  const int phys = scheme.physical_lanes(logical_width);

  std::vector<double> weights;
  if (plan.is_weighted()) weights.assign(n_trials, 1.0);
  std::optional<stats::ScrambledSobol> sobol;
  if (plan.strategy == stats::SamplingStrategy::kQmc) sobol.emplace(seed);
  const stats::ScrambledSobol* qmc = sobol ? &*sobol : nullptr;

  const std::vector<double> covered = stats::monte_carlo_rows(
      n_trials, 1,
      [&](stats::Xoshiro256pp& rng, std::size_t row, double* out) {
        thread_local std::vector<double> lanes;
        thread_local std::vector<std::uint8_t> faulty;
        lanes.resize(static_cast<std::size_t>(phys));
        faulty.resize(static_cast<std::size_t>(phys));
        const double w = sampler.sample_lanes_planned(rng, plan, row,
                                                      n_trials, lanes, qmc);
        if (!weights.empty()) weights[row] = w;
        simd::kernels().greater_mask(lanes.data(), lanes.size(), t_clk,
                                     faulty.data());
        out[0] = scheme.covers(faulty, logical_width) ? 1.0 : 0.0;
      },
      stats::MonteCarloOptions{.seed = seed});

  CoverageEstimate est;
  est.coverage = stats::weighted_mean(covered, weights);
  est.ess = weights.empty() ? static_cast<double>(n_trials)
                            : stats::effective_sample_size(weights);
  est.ci_halfwidth = stats::weighted_mean_ci_halfwidth(covered, weights);
  return est;
}

}  // namespace ntv::arch
