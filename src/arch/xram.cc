#include "arch/xram.h"

namespace ntv::arch {

XramCrossbar::XramCrossbar(int inputs, int outputs, int contexts)
    : inputs_(inputs), outputs_(outputs) {
  if (inputs < 1 || outputs < 1 || contexts < 1)
    throw std::invalid_argument("XramCrossbar: bad dimensions");
  configs_.assign(static_cast<std::size_t>(contexts),
                  std::vector<int>(static_cast<std::size_t>(outputs),
                                   kUnrouted));
}

void XramCrossbar::select_context(int context) {
  if (context < 0 || context >= contexts())
    throw std::out_of_range("XramCrossbar::select_context");
  active_ = context;
}

void XramCrossbar::set_route(int output, int input) {
  if (output < 0 || output >= outputs_)
    throw std::out_of_range("XramCrossbar::set_route: output");
  if (input != kUnrouted && (input < 0 || input >= inputs_))
    throw std::out_of_range("XramCrossbar::set_route: input");
  configs_[static_cast<std::size_t>(active_)]
          [static_cast<std::size_t>(output)] = input;
}

void XramCrossbar::program(std::span<const int> input_per_output) {
  if (static_cast<int>(input_per_output.size()) != outputs_)
    throw std::invalid_argument("XramCrossbar::program: size mismatch");
  for (int o = 0; o < outputs_; ++o) {
    set_route(o, input_per_output[static_cast<std::size_t>(o)]);
  }
}

int XramCrossbar::route(int output) const {
  if (output < 0 || output >= outputs_)
    throw std::out_of_range("XramCrossbar::route");
  return configs_[static_cast<std::size_t>(active_)]
                 [static_cast<std::size_t>(output)];
}

std::optional<std::vector<int>> XramCrossbar::bypass_mapping(
    std::span<const std::uint8_t> faulty_physical, int logical_width) {
  std::vector<int> map;
  map.reserve(static_cast<std::size_t>(logical_width));
  for (std::size_t phys = 0;
       phys < faulty_physical.size() &&
       map.size() < static_cast<std::size_t>(logical_width);
       ++phys) {
    if (!faulty_physical[phys]) map.push_back(static_cast<int>(phys));
  }
  if (map.size() < static_cast<std::size_t>(logical_width))
    return std::nullopt;
  return map;
}

}  // namespace ntv::arch
