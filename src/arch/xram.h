// XRAM crossbar model (Satpathy et al., VLSI'11).
//
// The XRAM is an SRAM-topology swizzle network that stores shuffle
// configurations at its crosspoints. The paper uses it for *global*
// sparing: any set of faulty SIMD lanes can be bypassed by programming a
// configuration that routes the logical lanes onto the surviving physical
// lanes (Appendix D, Fig. 12). This model captures the functional
// behaviour (configuration registers, routing, bypass computation) and a
// first-order area/power proxy (crosspoint count).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

namespace ntv::arch {

/// An inputs x outputs crossbar with per-output input-select registers and
/// multiple stored configurations (the XRAM holds one configuration bit
/// per crosspoint per context).
class XramCrossbar {
 public:
  /// Sentinel: output not driven.
  static constexpr int kUnrouted = -1;

  XramCrossbar(int inputs, int outputs, int contexts = 1);

  int inputs() const noexcept { return inputs_; }
  int outputs() const noexcept { return outputs_; }
  int contexts() const noexcept { return static_cast<int>(configs_.size()); }

  /// Selects the active stored configuration.
  void select_context(int context);
  int active_context() const noexcept { return active_; }

  /// Routes `output` from `input` in the active context.
  void set_route(int output, int input);

  /// Programs the whole active context: input_per_output[o] is the input
  /// feeding output o (kUnrouted allowed).
  void program(std::span<const int> input_per_output);

  /// Input currently feeding `output` (kUnrouted if none).
  int route(int output) const;

  /// Moves data through the crossbar: out[o] = in[route(o)]; unrouted
  /// outputs receive `fill`.
  template <typename T>
  void apply(std::span<const T> in, std::span<T> out, T fill = T{}) const {
    if (static_cast<int>(in.size()) != inputs_ ||
        static_cast<int>(out.size()) != outputs_)
      throw std::invalid_argument("XramCrossbar::apply: size mismatch");
    const auto& cfg = configs_[static_cast<std::size_t>(active_)];
    for (int o = 0; o < outputs_; ++o) {
      const int i = cfg[static_cast<std::size_t>(o)];
      out[static_cast<std::size_t>(o)] =
          (i == kUnrouted) ? fill : in[static_cast<std::size_t>(i)];
    }
  }

  /// Computes the lane remap that bypasses faulty physical lanes: result r
  /// has r[logical] = physical index of the logical lane's replacement,
  /// preserving order (Fig. 12(c)). Returns nullopt when fewer than
  /// `logical_width` healthy lanes exist.
  static std::optional<std::vector<int>> bypass_mapping(
      std::span<const std::uint8_t> faulty_physical, int logical_width);

  /// Crosspoint count — the first-order area/power proxy of the XRAM
  /// (grows quadratically when the crossbar widens for spares).
  long crosspoints() const noexcept {
    return static_cast<long>(inputs_) * outputs_;
  }

 private:
  int inputs_;
  int outputs_;
  int active_ = 0;
  std::vector<std::vector<int>> configs_;
};

}  // namespace ntv::arch
