#include "arch/area_power.h"

#include <stdexcept>

namespace ntv::arch {

double AreaPowerModel::duplication_area_overhead(int spares) const {
  if (spares < 0)
    throw std::invalid_argument("duplication_area_overhead: negative spares");
  return lane_area_frac * static_cast<double>(spares);
}

double AreaPowerModel::duplication_power_overhead(int spares) const {
  if (spares < 0)
    throw std::invalid_argument("duplication_power_overhead: negative spares");
  return spare_power_frac * static_cast<double>(spares);
}

double AreaPowerModel::duplication_power_overhead_with_xram(
    int spares, int width) const {
  if (width < 1)
    throw std::invalid_argument(
        "duplication_power_overhead_with_xram: bad width");
  const double w = static_cast<double>(width);
  const double ws = w + static_cast<double>(spares);
  const double xram_growth = (ws * ws) / (w * w) - 1.0;
  return duplication_power_overhead(spares) +
         xram_power_share * xram_growth;
}

double AreaPowerModel::vmargin_power_overhead(double vdd,
                                              double margin) const {
  if (vdd <= 0.0)
    throw std::invalid_argument("vmargin_power_overhead: vdd must be > 0");
  if (margin < 0.0)
    throw std::invalid_argument("vmargin_power_overhead: negative margin");
  const double ratio = (vdd + margin) / vdd;
  return dv_power_frac * (ratio * ratio - 1.0);
}

double AreaPowerModel::combined_power_overhead(int spares, double vdd,
                                               double margin) const {
  return duplication_power_overhead(spares) +
         vmargin_power_overhead(vdd, margin);
}

}  // namespace ntv::arch
