// Spatially correlated within-die variation (quad-tree model).
//
// The paper's two extremes — fully independent paths and one shared die
// factor — bracket reality: nearby lanes share lithography and stress
// conditions, so their delays correlate with distance. This sampler
// implements the classic hierarchical (Agarwal-style) model: the lane
// row is recursively halved, each segment at each level carries an
// independent normal Vth component, and a lane's systematic shift is the
// sum along its root-to-leaf path. Lane correlation then decays with
// distance: adjacent lanes share all levels, opposite ends share only
// the root.
//
// Consequence for sparing: faults arrive in spatial bursts, which is
// precisely the case where local (per-cluster) spares fail and the XRAM
// global pool wins (Appendix D).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "arch/simd_timing.h"
#include "device/variation.h"

namespace ntv::arch {

/// Parameters of the hierarchical correlation model.
struct SpatialConfig {
  TimingConfig timing;  ///< Width / paths / stages as usual.
  /// Fraction of the die-systematic Vth variance assigned to the shared
  /// root level; the remainder is split geometrically (factor 1/2 per
  /// level) across the finer levels. 1.0 reproduces the shared-die model.
  double root_fraction = 0.5;
};

/// Chip sampler with distance-decaying lane correlation. The total
/// systematic variance matches the calibrated sigma_vth_sys/sigma_mult_sys
/// regardless of how it is split across levels, so circuit-level
/// quantities (Fig. 1/2) are unchanged; only the lane-to-lane correlation
/// structure differs.
class SpatialChipSampler {
 public:
  SpatialChipSampler(const device::VariationModel& model, double vdd,
                     const SpatialConfig& config = {},
                     const device::DistributionOptions& dist_opt = {});

  /// Per-lane delays of one chip; lanes are in physical order, so
  /// correlation decays with index distance.
  void sample_lanes(stats::Xoshiro256pp& rng,
                    std::span<double> lanes) const;

  /// Per-lane systematic Vth shifts of one chip (exposed for correlation
  /// tests). Size must be a power-of-two-padded width internally; the
  /// span receives the first lanes.size() values.
  void sample_lane_shifts(stats::Xoshiro256pp& rng,
                          std::span<double> shifts) const;

  /// Number of tree levels used for `n` lanes.
  static int levels_for(int n);

  double vdd() const noexcept { return vdd_; }
  const SpatialConfig& config() const noexcept { return config_; }

 private:
  const device::VariationModel* model_;
  double vdd_;
  SpatialConfig config_;
  /// Random-only chain distribution (shared dist-cache entry).
  std::shared_ptr<const stats::GridDistribution> chain_;
  std::vector<double> level_sigma_;  ///< Vth sigma per tree level.
  double sensitivity_;
};

}  // namespace ntv::arch
