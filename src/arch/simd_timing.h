// Statistical timing model of a wide SIMD datapath.
//
// Follows the paper's modelling assumptions (Section 3.2):
//  * one critical path == a chain of `chain_stages` (50) FO4 inverters;
//  * each SIMD lane holds `paths_per_lane` (100) critical paths — the 50
//    reported by synthesis plus 50 near-critical paths that can become
//    critical under variation;
//  * a lane's delay is the slowest of its paths; an N-wide datapath's
//    delay is the slowest of its N lanes;
//  * all paths on a die share the die-to-die systematic variation; path
//    randomness is independent.
//
// The sampler is exact and fast: the i.i.d. chain-delay distribution is
// memoized process-wide (device/dist_cache.h) and a lane's max-of-k draw
// is one inverse-CDF evaluation, Q(u^(1/k)). Samplers at the same
// (node, Vdd, config) therefore share one immutable distribution instead
// of re-running the quadrature + FFT build. Row sampling is batched: all
// lane uniforms are drawn into a per-thread scratch buffer first, then
// one max_quantile_batch pass (guide-table accelerated, O(1) per lane)
// fills the row — byte-identical to the old per-lane round trip, with no
// inner-loop allocation (see docs/PERF.md).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "device/gate_table.h"
#include "device/variation.h"
#include "stats/discrete_distribution.h"
#include "stats/monte_carlo.h"
#include "stats/variance_reduction.h"

namespace ntv::arch {

/// How the die-to-die systematic variation enters the chip-level model.
enum class DieCorrelation {
  /// Every path samples the *total* cross-chip delay distribution i.i.d.
  /// This is the paper's own architecture-level methodology ("the delay of
  /// an N-wide SIMD datapath is determined by the slowest of the N SIMD
  /// lanes in simulations", each drawn from the measured path
  /// distribution), and it is what makes a handful of spares effective.
  kIndependentPaths,
  /// Physically-motivated alternative: all paths of one chip share a
  /// common die-systematic factor. Spares cannot reduce that shared
  /// factor, so duplication is much weaker here — quantified by the
  /// ablation bench (see DESIGN.md).
  kSharedDie,
};

/// Structural parameters of the studied SIMD datapath (Diet SODA).
struct TimingConfig {
  int simd_width = 128;     ///< Logical SIMD lanes.
  int paths_per_lane = 100; ///< Critical + near-critical paths per lane.
  int chain_stages = 50;    ///< FO4 stages per critical path.
  DieCorrelation correlation = DieCorrelation::kIndependentPaths;
};

/// Samples per-lane and per-chip delays at one (node, Vdd) operating point.
class ChipDelaySampler {
 public:
  ChipDelaySampler(const device::VariationModel& model, double vdd,
                   const TimingConfig& config = {},
                   const device::DistributionOptions& dist_opt = {});

  /// Fills `lanes` with one chip's per-lane delays [s]. All lanes share a
  /// freshly drawn die state; each lane is the max of paths_per_lane
  /// i.i.d. chain delays.
  void sample_lanes(stats::Xoshiro256pp& rng, std::span<double> lanes) const;

  /// Variance-reduced variant of sample_lanes: the lane uniforms are
  /// generated under `plan` (see stats/variance_reduction.h) and the
  /// returned value is the chip's likelihood-ratio weight (1.0 for
  /// unweighted plans). `row`/`n_rows` identify this chip within its
  /// Monte Carlo run (stratification and QMC need the sample index);
  /// `qmc` must be non-null for the qmc plan. The naive plan consumes
  /// the RNG stream exactly like sample_lanes and fills identical lanes.
  double sample_lanes_planned(stats::Xoshiro256pp& rng,
                              const stats::SamplingPlan& plan,
                              std::size_t row, std::size_t n_rows,
                              std::span<double> lanes,
                              const stats::ScrambledSobol* qmc = nullptr)
      const;

  /// SoA block fill for the Monte Carlo sweep: lane delays of rows
  /// [lo, hi) (row r at out[(r-lo)*row_width)), uniforms from the
  /// four-lane `rng` via plan_block_uniforms, one flat quantile pass over
  /// the whole block through the SIMD kernels. Writes each row's
  /// likelihood-ratio weight to weights[r-lo] (null for unweighted
  /// plans). Only valid for kIndependentPaths (kSharedDie draws per-row
  /// die states and keeps the row-at-a-time path); throws otherwise.
  void sample_lane_block(stats::Xoshiro256ppX4& rng,
                         const stats::SamplingPlan& plan, std::size_t lo,
                         std::size_t hi, std::size_t n_rows,
                         std::size_t row_width, double* out, double* weights,
                         const stats::ScrambledSobol* qmc = nullptr) const;

  /// Delay of one chip that uses the fastest `width` of the sampled
  /// lanes (structural duplication drops the rest). `lanes` is reordered.
  /// Precondition: width >= 1 and width <= lanes.size().
  static double chip_delay_from_lanes(std::span<double> lanes, int width);

  /// Convenience: one full-chip delay sample with `width` lanes.
  double sample_chip_delay(stats::Xoshiro256pp& rng, int width) const;

  /// Chip delay for EVERY spare count at once: element alpha of the result
  /// is the delay of a chip built from the first (width + alpha) lanes
  /// keeping the fastest `width` — i.e. the width-th smallest of that
  /// prefix. Runs in O(n log width) with a max-heap over the prefix.
  static std::vector<double> chip_delay_curve(std::span<const double> lanes,
                                              int width);

  /// Allocation-free chip_delay_curve: writes the curve into `out`
  /// (size lanes.size() - width + 1) using a per-thread heap scratch.
  /// The per-chip extraction loops call this once per Monte Carlo row,
  /// so the returning-vector overload would allocate per sample.
  static void chip_delay_curve_into(std::span<const double> lanes, int width,
                                    std::span<double> out);

  /// Batched chip_delay_curve_into over `n_chips` consecutive rows of
  /// `row_width` lanes each: chip c's curve (row_width - width + 1
  /// values) is written at out + c * out_stride. Interleaves four
  /// winner trees so their serial replace chains overlap — the per-chip
  /// loop is latency-bound, not throughput-bound — and emits values
  /// bit-identical to per-chip chip_delay_curve_into calls.
  static void chip_delay_curves_block(const double* rows, std::size_t n_chips,
                                      std::size_t row_width, int width,
                                      double* out, std::size_t out_stride);

  /// One critical-path delay sample (chain of chain_stages), including the
  /// die-systematic factor — the paper's Fig. 1(b)/Fig. 3 "critical path".
  double sample_path_delay(stats::Xoshiro256pp& rng) const;

  /// Nominal (variation-free) FO4 inverter delay at this Vdd [s] — the
  /// unit of the paper's "FO4 delay" axes.
  double fo4_unit() const noexcept { return fo4_unit_; }

  /// Nominal critical-path delay: chain_stages * fo4_unit [s].
  double nominal_path_delay() const noexcept {
    return fo4_unit_ * static_cast<double>(config_.chain_stages);
  }

  double vdd() const noexcept { return vdd_; }
  const TimingConfig& config() const noexcept { return config_; }
  const stats::GridDistribution& chain_distribution() const noexcept {
    return *chain_;
  }
  /// The exact per-lane delay law: max_of_iid(paths_per_lane) over the
  /// chain distribution, memoized process-wide. One lane sample is ONE
  /// inverse-CDF draw from this (the per-sample u^(1/k) pow of
  /// max_quantile is paid once, at build time).
  const stats::GridDistribution& lane_distribution() const noexcept {
    return *lane_;
  }
  const device::VariationModel& variation_model() const noexcept {
    return *model_;
  }

 private:
  const device::VariationModel* model_;
  double vdd_;
  TimingConfig config_;
  /// Shared cache entries (device/dist_cache.h); immutable, so copies of
  /// the sampler and concurrent readers are free.
  std::shared_ptr<const stats::GridDistribution> chain_;
  std::shared_ptr<const stats::GridDistribution> lane_;
  double fo4_unit_;
};

/// Monte Carlo chip-delay sample with percentile queries.
struct ChipMcResult {
  std::vector<double> delays;  ///< One chip delay per Monte Carlo sample [s].
  /// Likelihood-ratio weight per sample; empty (the unweighted plans and
  /// the historical API) means unit weights and keeps every query's
  /// arithmetic byte-identical to the pre-plan code.
  std::vector<double> weights;

  /// p-th percentile of the sample [s]; the paper signs off at p = 99.
  /// Self-normalized weighted percentile when weights are present.
  double percentile(double p) const;

  /// Kish effective sample size (== delays.size() when unweighted).
  double ess() const;

  /// Distribution-free CI of the p-th percentile (see
  /// stats::weighted_percentile_ci for the construction).
  stats::QuantileCi percentile_ci(double p, double z = 1.959963984540054)
      const;
};

/// Samples `n_chips` chips of `width (+ spares)` lanes; each chip keeps its
/// fastest `width` lanes. The optional sampling plan substitutes
/// variance-reduced lane uniforms; the default (naive) plan is
/// byte-identical to the historical sampler.
ChipMcResult mc_chip_delays(const ChipDelaySampler& sampler,
                            std::size_t n_chips, int width, int spares = 0,
                            const stats::MonteCarloOptions& opt = {},
                            const stats::SamplingPlan& plan = {});

/// Shared-sample sweep over several spare counts: for each chip, lanes are
/// drawn once for the largest configuration and every spare count alpha
/// reuses the first (width + alpha) of them — exactly the paper's Fig. 5
/// construction ("the six slowest SIMD datapaths are dropped"). Under a
/// weighted plan, every ChipMcResult shares the per-chip row weights.
std::vector<ChipMcResult> mc_chip_delay_sweep(
    const ChipDelaySampler& sampler, std::size_t n_chips, int width,
    std::span<const int> spare_counts,
    const stats::MonteCarloOptions& opt = {},
    const stats::SamplingPlan& plan = {});

}  // namespace ntv::arch
