// Area/power overhead accounting for the mitigation techniques.
//
// The paper bases its overhead percentages on the Diet SODA silicon
// budget. The published tables are all linear in two per-lane fractions
// and one domain share, which this model captures:
//
//  * each spare SIMD lane adds `lane_area_frac` of PE area (Table 1's
//    area column: 6 spares -> 2.6 %, 28 -> 12.1 %);
//  * a spare's run-time power cost is routing only (the lane itself is
//    power-gated): `spare_power_frac` per spare (6 -> 1.0 %, 28 -> 4.6 %);
//  * the near-threshold (DV) domain consumes `dv_power_frac` of total PE
//    power, so a voltage margin V_M on top of Vdd costs
//    dv_power_frac * ((Vdd+V_M)^2/Vdd^2 - 1) of chip power (dynamic CV^2
//    scaling; reproduces Table 2's power column).
#pragma once

namespace ntv::arch {

/// Linear overhead model fitted to the Diet SODA budget.
struct AreaPowerModel {
  double lane_area_frac = 0.00433;   ///< PE-area fraction per SIMD lane.
  double spare_power_frac = 0.00164; ///< Routing-power fraction per spare.
  double dv_power_frac = 0.43;       ///< DV-domain share of PE power.

  /// Area overhead fraction of adding `spares` lanes (>= 0).
  double duplication_area_overhead(int spares) const;

  /// Power overhead fraction of adding `spares` power-gated lanes.
  double duplication_power_overhead(int spares) const;

  /// Share of PE power consumed by the SIMD shuffle network (XRAM). Used
  /// only by the _with_xram variant; the paper's tables use the linear
  /// model above (the text notes the widened network's power "cannot be
  /// ignored" at low voltages without quantifying it).
  double xram_power_share = 0.03;

  /// Duplication power overhead including the quadratic growth of the
  /// widened (width+spares)^2 crossbar (the paper's Section 4.1 caveat).
  double duplication_power_overhead_with_xram(int spares,
                                              int width = 128) const;

  /// Power overhead fraction of raising the DV-domain supply from `vdd`
  /// to `vdd + margin` (dynamic CV^2 scaling of the DV domain).
  double vmargin_power_overhead(double vdd, double margin) const;

  /// Combined overhead of `spares` lanes plus a voltage margin.
  double combined_power_overhead(int spares, double vdd,
                                 double margin) const;
};

}  // namespace ntv::arch
