// Closed-form chip-delay distributions (no Monte Carlo).
//
// Under the paper's i.i.d.-path methodology the whole chip-level study is
// analytic order statistics:
//
//   lane  = max of p i.i.d. paths              -> CDF_lane  = F_path^p
//   chip (alpha spares, keep fastest w of w+alpha lanes)
//         = the w-th order statistic of w+alpha i.i.d. lanes
//           CDF_chip(x) = P(Binomial(w+alpha, F_lane(x)) >= w)
//
// Combined with the exact FFT-convolved path distribution this gives the
// entire Fig. 3-8 / Table 1-4 machinery in closed form — used to
// cross-validate the Monte Carlo engine and to answer "what percentile
// am I really signing off at?" without sampling noise.
#pragma once

#include <memory>

#include "arch/simd_timing.h"

namespace ntv::arch {

/// Exact chip-delay law at one (node, Vdd) operating point. Only valid
/// for DieCorrelation::kIndependentPaths (the constructor throws for the
/// shared-die mode, where lanes are not independent).
class AnalyticChipModel {
 public:
  AnalyticChipModel(const device::VariationModel& model, double vdd,
                    const TimingConfig& config = {},
                    const device::DistributionOptions& dist_opt = {});

  /// Exact delay distribution of one critical path (total, cross-chip).
  const stats::GridDistribution& path() const noexcept { return *path_; }

  /// Exact delay distribution of one lane (max of paths_per_lane paths).
  const stats::GridDistribution& lane() const noexcept { return lane_; }

  /// Exact delay distribution of the chip with `spares` spare lanes.
  stats::GridDistribution chip(int spares = 0) const;

  /// Exact sign-off delay: the `percentile` point of chip(spares) [s].
  double signoff_delay(double percentile, int spares = 0) const;

  /// Fewest spares whose sign-off delay meets `target` [s]; returns
  /// max_spares + 1 when none do.
  int required_spares(double target, double percentile,
                      int max_spares = 128) const;

  double fo4_unit() const noexcept { return fo4_unit_; }
  double vdd() const noexcept { return vdd_; }
  const TimingConfig& config() const noexcept { return config_; }

 private:
  double vdd_;
  TimingConfig config_;
  /// Shared dist-cache entry (device/dist_cache.h).
  std::shared_ptr<const stats::GridDistribution> path_;
  stats::GridDistribution lane_;
  double fo4_unit_;
};

}  // namespace ntv::arch
