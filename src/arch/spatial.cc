#include "arch/spatial.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "device/dist_cache.h"

namespace ntv::arch {

int SpatialChipSampler::levels_for(int n) {
  int levels = 1;
  while ((1 << (levels - 1)) < n) ++levels;
  return levels;
}

SpatialChipSampler::SpatialChipSampler(
    const device::VariationModel& model, double vdd,
    const SpatialConfig& config,
    const device::DistributionOptions& dist_opt)
    : model_(&model),
      vdd_(vdd),
      config_(config),
      chain_(device::cached_chain_distribution(
          model, vdd, config.timing.chain_stages, dist_opt)),
      sensitivity_(model.gate_model().sensitivity(vdd)) {
  if (config.root_fraction < 0.0 || config.root_fraction > 1.0)
    throw std::invalid_argument(
        "SpatialChipSampler: root_fraction in [0, 1]");

  // Split the calibrated systematic Vth variance across the tree levels:
  // root gets root_fraction, the rest decays geometrically (1/2 each
  // level) and is renormalized so the total is exact.
  const double total_var =
      model.params().sigma_vth_sys * model.params().sigma_vth_sys;
  const int levels = levels_for(config.timing.simd_width);
  level_sigma_.assign(static_cast<std::size_t>(levels), 0.0);
  if (levels == 1 || config.root_fraction >= 1.0) {
    level_sigma_[0] = std::sqrt(total_var);
  } else {
    level_sigma_[0] = std::sqrt(total_var * config.root_fraction);
    double weight_sum = 0.0;
    for (int l = 1; l < levels; ++l) weight_sum += std::pow(0.5, l - 1);
    const double rest = total_var * (1.0 - config.root_fraction);
    for (int l = 1; l < levels; ++l) {
      level_sigma_[static_cast<std::size_t>(l)] =
          std::sqrt(rest * std::pow(0.5, l - 1) / weight_sum);
    }
  }
}

void SpatialChipSampler::sample_lane_shifts(stats::Xoshiro256pp& rng,
                                            std::span<double> shifts) const {
  const int levels = static_cast<int>(level_sigma_.size());
  std::fill(shifts.begin(), shifts.end(), 0.0);
  for (int l = 0; l < levels; ++l) {
    const int segments = 1 << l;
    const double sigma = level_sigma_[static_cast<std::size_t>(l)];
    // One draw per segment at this level; lanes inherit their segment's.
    const std::size_t n = shifts.size();
    const std::size_t span_size = (n + static_cast<std::size_t>(segments) - 1) /
                                  static_cast<std::size_t>(segments);
    for (int s = 0; s < segments; ++s) {
      const double draw = rng.normal(0.0, sigma);
      const std::size_t begin = static_cast<std::size_t>(s) * span_size;
      const std::size_t end = std::min(n, begin + span_size);
      for (std::size_t i = begin; i < end; ++i) shifts[i] += draw;
      if (begin >= n) break;
    }
  }
}

void SpatialChipSampler::sample_lanes(stats::Xoshiro256pp& rng,
                                      std::span<double> lanes) const {
  // Per-thread scratch (shifts + uniforms in one buffer): chips are
  // sampled by the MC row loop, so a per-call allocation here would be a
  // per-sample allocation there.
  const std::size_t n = lanes.size();
  thread_local std::vector<double> scratch;
  if (scratch.size() < 2 * n) scratch.resize(2 * n);
  const std::span<double> shifts(scratch.data(), n);
  double* u = scratch.data() + n;

  sample_lane_shifts(rng, shifts);
  // The drive-systematic part has no published spatial structure; keep it
  // die-wide as in the shared-die model.
  const double mult =
      1.0 + rng.normal(0.0, model_->params().sigma_mult_sys);
  // Same RNG order as the old per-lane loop: all uniforms are consumed
  // lane-by-lane, just hoisted ahead of the batched inverse-CDF pass.
  for (std::size_t i = 0; i < n; ++i) u[i] = rng.uniform();
  chain_->max_quantile_batch(std::span<const double>(u, n),
                             config_.timing.paths_per_lane, lanes);
  for (std::size_t i = 0; i < n; ++i) {
    const double scale = mult * std::exp(sensitivity_ * shifts[i]);
    lanes[i] = scale * lanes[i];
  }
}

}  // namespace ntv::arch
