#include "arch/analytic_timing.h"

#include <stdexcept>

#include "device/dist_cache.h"
#include "stats/root_find.h"

namespace ntv::arch {

AnalyticChipModel::AnalyticChipModel(
    const device::VariationModel& model, double vdd,
    const TimingConfig& config,
    const device::DistributionOptions& dist_opt)
    : vdd_(vdd),
      config_(config),
      path_(device::cached_total_chain_distribution(model, vdd,
                                                    config.chain_stages,
                                                    dist_opt)),
      lane_(path_->max_of_iid(config.paths_per_lane)),
      fo4_unit_(model.gate_model().fo4_delay(vdd)) {
  if (config.correlation != DieCorrelation::kIndependentPaths)
    throw std::invalid_argument(
        "AnalyticChipModel: only the independent-paths methodology has a "
        "closed form; use the Monte Carlo sampler for shared-die mode");
  if (config.simd_width < 1 || config.paths_per_lane < 1)
    throw std::invalid_argument("AnalyticChipModel: bad TimingConfig");
}

stats::GridDistribution AnalyticChipModel::chip(int spares) const {
  if (spares < 0)
    throw std::invalid_argument("AnalyticChipModel::chip: negative spares");
  return lane_.order_statistic(config_.simd_width,
                               config_.simd_width + spares);
}

double AnalyticChipModel::signoff_delay(double percentile,
                                        int spares) const {
  if (!(percentile > 0.0) || !(percentile < 100.0))
    throw std::invalid_argument(
        "AnalyticChipModel::signoff_delay: percentile in (0, 100)");
  return chip(spares).quantile(percentile / 100.0);
}

int AnalyticChipModel::required_spares(double target, double percentile,
                                       int max_spares) const {
  const long result = stats::smallest_true(
      [&](long alpha) {
        return signoff_delay(percentile, static_cast<int>(alpha)) <= target;
      },
      0, max_spares);
  return static_cast<int>(result);
}

}  // namespace ntv::arch
